//! Motif discovery over calendar windows (Definition 5).
//!
//! A motif is a set `M` of time-aligned windows — days or weeks, drawn from
//! one or many gateways — such that
//!
//! 1. *individual similarity*: every member has `cor ≥ φ` with at least one
//!    other member, and
//! 2. *group similarity*: every pair of members has `cor ≥ ¾φ`.
//!
//! The paper uses φ = 0.8 and additionally merges motifs when **all** cross
//! pairs correlate at `≥ 0.6`. Construction is greedy over the strongest
//! pairs first: each new window must be φ-similar to an existing member and
//! ¾φ-similar to all of them, which maintains both invariants by
//! construction.

use crate::engine::{
    cor_matrix_observed, cor_matrix_pruned_observed, cor_profiled, sketch_series_observed,
    CorMatrixConfig, PruneConfig,
};
use crate::obs::{PipelineObs, NEAR_THRESHOLD_BAND};
use std::collections::HashMap;
use wtts_stats::kernels::{fast_lane_decision, FastDecision};
use wtts_stats::sketch::{CorSketch, SketchConfig};
use wtts_stats::{CorProfile, CorScratch};
use wtts_timeseries::Weekday;

/// Similarity reported for pairs the sketch tier pruned: far below every
/// admissible threshold *and* far outside [`F32_REVERIFY_BAND`], so every
/// membership verdict on a pruned pair is `false` without consulting the
/// exact checker — exactly the verdict the dense path reaches, since a
/// pruned pair's true similarity is provably below the prune threshold
/// (which never exceeds φ, ¾φ or the merge threshold).
const PRUNED_SIM: f32 = -2.0;

/// Half-width of the f64 band around a decision threshold inside which the
/// condensed matrix's `f32` similarity is re-verified in `f64` before a
/// membership verdict.
///
/// Rounding `f64 → f32` moves a similarity by at most half an `f32` ULP
/// (≈ 3·10⁻⁸ near φ = 0.8), so a flipped verdict requires the exact value
/// to lie within that distance of the threshold. The band is two orders of
/// magnitude wider — comfortably conservative, yet narrow enough that
/// re-verification stays rare (the `f64_reverified` counter measures how
/// rare on real data).
pub const F32_REVERIFY_BAND: f64 = 1e-6;

/// Re-verifies near-threshold `f32` similarities in `f64`.
///
/// The exact value is recomputed from the same [`CorProfile`]s that filled
/// the condensed matrix, so it is bit-identical to the pre-rounding `f64`;
/// a small cache keeps each pair's recompute to one.
struct ExactChecker<'a> {
    profiles: &'a [CorProfile],
    slot: &'a [Option<usize>],
    scratch: CorScratch,
    cache: HashMap<(usize, usize), f64>,
}

impl<'a> ExactChecker<'a> {
    fn new(profiles: &'a [CorProfile], slot: &'a [Option<usize>]) -> ExactChecker<'a> {
        ExactChecker {
            profiles,
            slot,
            scratch: CorScratch::new(),
            cache: HashMap::new(),
        }
    }

    /// The exact `f64` similarity of original windows `i` and `j`.
    fn exact(&mut self, i: usize, j: usize) -> f64 {
        let (Some(a), Some(b)) = (self.slot[i], self.slot[j]) else {
            return 0.0;
        };
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        let v = cor_profiled(
            &self.profiles[key.0],
            &self.profiles[key.1],
            &mut self.scratch,
        );
        self.cache.insert(key, v);
        v
    }

    /// Whether the similarity of windows `i` and `j` meets `threshold`,
    /// deciding in `f64` whenever the rounded value `approx` lands within
    /// [`F32_REVERIFY_BAND`] of the threshold.
    ///
    /// The band test is the shared fast-lane rule
    /// ([`wtts_stats::kernels::fast_lane_decision`]), so this checker and
    /// every other `f32` consumer apply identical arithmetic at the
    /// decision boundary.
    fn meets(
        &mut self,
        approx: f32,
        i: usize,
        j: usize,
        threshold: f64,
        obs: Option<&PipelineObs>,
    ) -> bool {
        match fast_lane_decision(approx as f64, threshold, F32_REVERIFY_BAND) {
            FastDecision::AtLeast => true,
            FastDecision::Below => false,
            FastDecision::Reverify => {
                if let Some(o) = obs {
                    o.f64_reverified.incr();
                }
                self.exact(i, j) >= threshold
            }
        }
    }
}

/// Identity of one window in the motif-search input set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowRef {
    /// Gateway the window came from.
    pub gateway: usize,
    /// Week index of the window.
    pub week: u32,
    /// Weekday for daily windows, `None` for weekly windows.
    pub weekday: Option<Weekday>,
}

/// Thresholds for motif discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifConfig {
    /// Individual-similarity threshold φ.
    pub phi: f64,
    /// Group similarity is `group_factor * phi` (the paper's ¾).
    pub group_factor: f64,
    /// All-pairs threshold for merging two motifs.
    pub merge_threshold: f64,
    /// Minimum finite samples for a window to participate.
    pub min_observations: usize,
}

impl Default for MotifConfig {
    fn default() -> MotifConfig {
        MotifConfig {
            phi: 0.8,
            group_factor: 0.75,
            merge_threshold: 0.6,
            min_observations: 3,
        }
    }
}

impl MotifConfig {
    /// The group-similarity threshold `¾φ`.
    pub fn group_threshold(&self) -> f64 {
        self.group_factor * self.phi
    }
}

/// A discovered motif: indices into the input window set.
#[derive(Debug, Clone, PartialEq)]
pub struct Motif {
    /// Member indices into the window list passed to [`discover_motifs`].
    pub members: Vec<usize>,
}

impl Motif {
    /// The motif's support (number of member windows).
    pub fn support(&self) -> usize {
        self.members.len()
    }

    /// Distinct gateways contributing to the motif.
    pub fn gateways(&self, refs: &[WindowRef]) -> Vec<usize> {
        let mut g: Vec<usize> = self.members.iter().map(|&i| refs[i].gateway).collect();
        g.sort_unstable();
        g.dedup();
        g
    }

    /// Fraction of members whose gateway contributes more than one window —
    /// the paper reports this as "% occur within the same gateways".
    pub fn same_gateway_fraction(&self, refs: &[WindowRef]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let mut counts = std::collections::HashMap::new();
        for &i in &self.members {
            *counts.entry(refs[i].gateway).or_insert(0usize) += 1;
        }
        let repeat: usize = counts.values().filter(|&&c| c > 1).sum();
        repeat as f64 / self.members.len() as f64
    }

    /// Element-wise mean of the member windows — the motif's "shape", what
    /// Figures 11 and 14 plot.
    pub fn average_pattern(&self, windows: &[Vec<f64>]) -> Vec<f64> {
        let len = self.members.first().map(|&i| windows[i].len()).unwrap_or(0);
        let mut sums = vec![0.0; len];
        let mut counts = vec![0usize; len];
        for &i in &self.members {
            for (k, &v) in windows[i].iter().enumerate() {
                if v.is_finite() {
                    sums[k] += v;
                    counts[k] += 1;
                }
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
            .collect()
    }

    /// Exports the motif as a streaming template: its average pattern under
    /// the given name, ready for [`crate::streaming::MotifMatcher`] or the
    /// fleet-ingest pipeline. This is the batch → streaming hand-off: motifs
    /// discovered offline become the library live windows are matched
    /// against.
    pub fn to_template(
        &self,
        name: impl Into<String>,
        windows: &[Vec<f64>],
    ) -> crate::streaming::MotifTemplate {
        crate::streaming::MotifTemplate {
            name: name.into(),
            pattern: self.average_pattern(windows),
        }
    }

    /// Share of members falling on weekend days (daily motifs; Figure 16b).
    pub fn weekend_fraction(&self, refs: &[WindowRef]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let weekend = self
            .members
            .iter()
            .filter(|&&i| refs[i].weekday.is_some_and(Weekday::is_weekend))
            .count();
        weekend as f64 / self.members.len() as f64
    }
}

/// Discovers motifs among `windows` with the given thresholds.
///
/// `windows[i]` is the sample vector of window `i`; windows with fewer than
/// `config.min_observations` finite samples are ignored. Returns motifs
/// sorted by descending support.
///
/// ```
/// use wtts_core::motif::{discover_motifs, MotifConfig};
///
/// // Four evening-shaped days and one noise day.
/// let evening = |k: usize| -> Vec<f64> {
///     (0..8).map(|b| if b >= 6 { 900.0 + (b * 7 + k) as f64 } else { (b + k) as f64 }).collect()
/// };
/// let mut windows: Vec<Vec<f64>> = (0..4).map(evening).collect();
/// windows.push(vec![7.0, 1.0, 9.0, 2.0, 8.0, 3.0, 1.0, 5.0]);
///
/// let motifs = discover_motifs(&windows, &MotifConfig::default());
/// assert_eq!(motifs[0].support(), 4);
/// assert!(!motifs[0].members.contains(&4)); // the noise day stays out
/// ```
pub fn discover_motifs(windows: &[Vec<f64>], config: &MotifConfig) -> Vec<Motif> {
    discover_motifs_observed(windows, config, None)
}

/// [`discover_motifs`] with optional observability: when `obs` is `Some`,
/// the run opens a span on [`PipelineObs::motif_discovery`] and feeds the
/// pair counters (`pairs_evaluated` / `candidate_pairs` / `pairs_pruned` /
/// `members_grown` / `motifs_merged`), the near-threshold instrument
/// (`near_phi` / `near_group`, within
/// [`NEAR_THRESHOLD_BAND`](crate::obs::NEAR_THRESHOLD_BAND) of φ and ¾φ)
/// and `f64_reverified`. With `None` the run is exactly `discover_motifs`.
pub fn discover_motifs_observed(
    windows: &[Vec<f64>],
    config: &MotifConfig,
    obs: Option<&PipelineObs>,
) -> Vec<Motif> {
    let _span = obs.map(|o| o.motif_discovery.enter());
    let n = windows.len();
    // Eligible windows get a slot in the condensed similarity matrix;
    // ineligible ones never pair with anything.
    let mut slot: Vec<Option<usize>> = vec![None; n];
    let mut eligible: Vec<usize> = Vec::new();
    let mut profiles: Vec<CorProfile> = Vec::new();
    for (i, w) in windows.iter().enumerate() {
        if w.iter().filter(|v| v.is_finite()).count() >= config.min_observations {
            slot[i] = Some(profiles.len());
            eligible.push(i);
            let _p = obs.map(|o| o.profile_build.enter());
            profiles.push(CorProfile::new(w));
        }
    }

    // One batch upper-triangle sweep replaces the per-pair cor() calls and
    // the old duplicated n × n storage.
    let matrix = cor_matrix_observed(&profiles, &CorMatrixConfig::default(), obs);
    let sim = |i: usize, j: usize| -> f32 {
        match (slot[i], slot[j]) {
            (Some(a), Some(b)) => matrix.get(a, b),
            _ => 0.0,
        }
    };
    // Membership verdicts near a threshold are decided in f64, never off
    // the rounded f32 (the CondensedMatrix quantization guard).
    let mut exact = ExactChecker::new(&profiles, &slot);

    let mut candidate_pairs: Vec<(usize, usize)> = Vec::new();
    let group_threshold = config.group_threshold();
    for (a, &i) in eligible.iter().enumerate() {
        for (offset, &j) in eligible[a + 1..].iter().enumerate() {
            let s = matrix.get(a, a + 1 + offset);
            if let Some(o) = obs {
                o.pairs_evaluated.incr();
                if (s as f64 - config.phi).abs() <= NEAR_THRESHOLD_BAND {
                    o.near_phi.incr();
                }
                if (s as f64 - group_threshold).abs() <= NEAR_THRESHOLD_BAND {
                    o.near_group.incr();
                }
            }
            if exact.meets(s, i, j, config.phi, obs) {
                candidate_pairs.push((i, j));
                if let Some(o) = obs {
                    o.candidate_pairs.incr();
                }
            } else if let Some(o) = obs {
                o.pairs_pruned.incr();
            }
        }
    }
    assemble_motifs(n, candidate_pairs, &sim, &mut exact, config, obs)
}

/// The shared back half of motif discovery: sorts the φ-candidate pairs by
/// descending similarity, grows motifs greedily and merges them. Both the
/// dense and the sketch-pruned front ends feed this with the same candidate
/// list and bit-identical `sim` values for every pair that can influence a
/// verdict, which is what makes their outputs identical.
fn assemble_motifs(
    n: usize,
    mut candidate_pairs: Vec<(usize, usize)>,
    sim: &dyn Fn(usize, usize) -> f32,
    exact: &mut ExactChecker<'_>,
    config: &MotifConfig,
    obs: Option<&PipelineObs>,
) -> Vec<Motif> {
    let group_threshold = config.group_threshold();
    candidate_pairs.sort_by(|a, b| {
        sim(b.0, b.1)
            .partial_cmp(&sim(a.0, a.1))
            .expect("finite similarity")
    });

    // Greedy growth.
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut motifs: Vec<Vec<usize>> = Vec::new();
    for (i, j) in candidate_pairs {
        match (assignment[i], assignment[j]) {
            (None, None) => {
                assignment[i] = Some(motifs.len());
                assignment[j] = Some(motifs.len());
                motifs.push(vec![i, j]);
            }
            (Some(m), None) => {
                if motifs[m]
                    .iter()
                    .all(|&k| exact.meets(sim(j, k), j, k, group_threshold, obs))
                {
                    assignment[j] = Some(m);
                    motifs[m].push(j);
                    if let Some(o) = obs {
                        o.members_grown.incr();
                    }
                }
            }
            (None, Some(m)) => {
                if motifs[m]
                    .iter()
                    .all(|&k| exact.meets(sim(i, k), i, k, group_threshold, obs))
                {
                    assignment[i] = Some(m);
                    motifs[m].push(i);
                    if let Some(o) = obs {
                        o.members_grown.incr();
                    }
                }
            }
            (Some(_), Some(_)) => {}
        }
    }

    // Merge phase: combine motifs whose cross pairs all reach the merge
    // threshold. One pass over motif pairs, smallest into largest.
    let mut merged: Vec<Option<Vec<usize>>> = motifs.into_iter().map(Some).collect();
    for a in 0..merged.len() {
        if merged[a].is_none() {
            continue;
        }
        for b in (a + 1)..merged.len() {
            let (Some(ma), Some(mb)) = (&merged[a], &merged[b]) else {
                continue;
            };
            let all_cross = ma.iter().all(|&i| {
                mb.iter()
                    .all(|&j| exact.meets(sim(i, j), i, j, config.merge_threshold, obs))
            });
            if all_cross {
                let mb = merged[b].take().expect("checked above");
                merged[a].as_mut().expect("checked above").extend(mb);
                if let Some(o) = obs {
                    o.motifs_merged.incr();
                }
            }
        }
    }

    let mut out: Vec<Motif> = merged
        .into_iter()
        .flatten()
        .map(|members| Motif { members })
        .collect();
    out.sort_by_key(|m| std::cmp::Reverse(m.support()));
    out
}

/// The reusable front half of sketch-pruned motif discovery: eligibility,
/// per-window [`CorProfile`]s and pruning sketches, built **once** and
/// shared across every discovery run over the same window family — the
/// daily and weekly sweeps, threshold ablations, repeated configs.
///
/// Profiles and sketches depend only on the windows and the eligibility
/// cutoff, not on the thresholds, so one index serves any number of
/// [`discover_motifs_indexed`] calls with different [`MotifConfig`]s.
#[derive(Debug, Clone)]
pub struct MotifIndex {
    n_windows: usize,
    min_observations: usize,
    slot: Vec<Option<usize>>,
    eligible: Vec<usize>,
    profiles: Vec<CorProfile>,
    sketches: Vec<CorSketch>,
}

impl MotifIndex {
    /// Builds the index: one profile and one pruning sketch per window with
    /// at least `min_observations` finite samples.
    pub fn new(windows: &[Vec<f64>], min_observations: usize) -> MotifIndex {
        MotifIndex::observed(windows, min_observations, None)
    }

    /// [`MotifIndex::new`] with optional observability: profile and sketch
    /// constructions open spans on [`PipelineObs::profile_build`] and
    /// [`PipelineObs::sketch_build`].
    pub fn observed(
        windows: &[Vec<f64>],
        min_observations: usize,
        obs: Option<&PipelineObs>,
    ) -> MotifIndex {
        let n = windows.len();
        let mut slot: Vec<Option<usize>> = vec![None; n];
        let mut eligible: Vec<usize> = Vec::new();
        let mut profiles: Vec<CorProfile> = Vec::new();
        for (i, w) in windows.iter().enumerate() {
            if w.iter().filter(|v| v.is_finite()).count() >= min_observations {
                slot[i] = Some(profiles.len());
                eligible.push(i);
                let _p = obs.map(|o| o.profile_build.enter());
                profiles.push(CorProfile::new(w));
            }
        }
        let sketches = sketch_series_observed(&profiles, &SketchConfig::default(), obs);
        MotifIndex {
            n_windows: n,
            min_observations,
            slot,
            eligible,
            profiles,
            sketches,
        }
    }

    /// Number of windows the index was built over (eligible or not).
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    /// Number of windows that passed the eligibility cutoff.
    pub fn n_eligible(&self) -> usize {
        self.eligible.len()
    }

    /// The eligibility cutoff the index was built with; configs passed to
    /// [`discover_motifs_indexed`] must use the same value.
    pub fn min_observations(&self) -> usize {
        self.min_observations
    }
}

/// Sketch-pruned [`discover_motifs`]: identical output, but pairs provably
/// below every decision threshold are dismissed by cheap sketch bounds
/// instead of exact Definition-1 evaluation. Builds a throwaway
/// [`MotifIndex`]; to amortize the index across several runs (daily *and*
/// weekly families, ablation sweeps), build it once and call
/// [`discover_motifs_indexed`].
pub fn discover_motifs_pruned(windows: &[Vec<f64>], config: &MotifConfig) -> Vec<Motif> {
    discover_motifs_indexed(
        &MotifIndex::new(windows, config.min_observations),
        config,
        None,
    )
}

/// Motif discovery over a prebuilt [`MotifIndex`], with sketch pruning.
///
/// Bit-identical to `discover_motifs_observed` on the same windows and
/// config, by the following argument:
///
/// * The sparse matrix prunes at `φ_prune = min(φ, ¾φ-group, merge)`, so a
///   pruned pair's exact similarity is provably `< φ_prune − margin`, and
///   its dense `f32` value is `< φ_prune` — below **every** threshold any
///   verdict uses, even after `f64` re-verification. Reporting it as
///   [`PRUNED_SIM`] therefore yields the same `false` verdict the dense
///   path reaches. If any threshold is ≤ 0 the prune threshold is ≤ 0 and
///   the engine evaluates every pair — trivially dense.
/// * Surviving pairs carry the engine's bit-identical `f32` similarity, the
///   candidate scan walks them in the same lexicographic order the dense
///   scan uses, and the descending-similarity sort is stable — so the
///   greedy growth sees the exact same pair sequence.
///
/// Returns motifs sorted by descending support. Panics if
/// `config.min_observations` differs from the index's.
pub fn discover_motifs_indexed(
    index: &MotifIndex,
    config: &MotifConfig,
    obs: Option<&PipelineObs>,
) -> Vec<Motif> {
    assert_eq!(
        config.min_observations, index.min_observations,
        "MotifIndex was built with a different eligibility cutoff"
    );
    let _span = obs.map(|o| o.motif_discovery.enter());
    let group_threshold = config.group_threshold();
    let phi_prune = config.phi.min(group_threshold).min(config.merge_threshold);
    let prune_config = PruneConfig {
        threshold: phi_prune,
        sketch: SketchConfig::default(),
        matrix: CorMatrixConfig::default(),
    };
    let (sparse, _stats) =
        cor_matrix_pruned_observed(&index.profiles, &index.sketches, &prune_config, obs);

    let slot = &index.slot;
    let sim = |i: usize, j: usize| -> f32 {
        match (slot[i], slot[j]) {
            (Some(a), Some(b)) => sparse.get(a, b).unwrap_or(PRUNED_SIM),
            _ => 0.0,
        }
    };
    let mut exact = ExactChecker::new(&index.profiles, slot);

    // Candidate scan over the survivors only, in the same lexicographic
    // (row-major upper-triangle) order the dense scan uses. Pruned pairs
    // can never be candidates — their dense f32 similarity is below
    // φ_prune ≤ φ and their exact value below φ_prune − margin, so the
    // dense scan rejects them with or without re-verification.
    let mut candidate_pairs: Vec<(usize, usize)> = Vec::new();
    for (a, b, s) in sparse.entries() {
        let (i, j) = (index.eligible[a], index.eligible[b]);
        if let Some(o) = obs {
            o.pairs_evaluated.incr();
            if (s as f64 - config.phi).abs() <= NEAR_THRESHOLD_BAND {
                o.near_phi.incr();
            }
            if (s as f64 - group_threshold).abs() <= NEAR_THRESHOLD_BAND {
                o.near_group.incr();
            }
        }
        if exact.meets(s, i, j, config.phi, obs) {
            candidate_pairs.push((i, j));
            if let Some(o) = obs {
                o.candidate_pairs.incr();
            }
        } else if let Some(o) = obs {
            o.pairs_pruned.incr();
        }
    }

    assemble_motifs(
        index.n_windows,
        candidate_pairs,
        &sim,
        &mut exact,
        config,
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cor;

    /// An evening-shaped window (8 three-hour bins), with variation.
    fn evening(seed: usize) -> Vec<f64> {
        (0..8)
            .map(|b| {
                let base = if b >= 6 { 1_000.0 } else { 10.0 };
                base + ((b * 7 + seed * 13) % 11) as f64
            })
            .collect()
    }

    /// A morning-shaped window.
    fn morning(seed: usize) -> Vec<f64> {
        (0..8)
            .map(|b| {
                let base = if (2..4).contains(&b) { 1_000.0 } else { 10.0 };
                base + ((b * 5 + seed * 17) % 13) as f64
            })
            .collect()
    }

    /// Pure noise windows.
    fn noise(seed: usize) -> Vec<f64> {
        (0..8)
            .map(|b| ((b * 7919 + seed * 104729) % 997) as f64)
            .collect()
    }

    fn refs_for(n: usize) -> Vec<WindowRef> {
        (0..n)
            .map(|i| WindowRef {
                gateway: i / 4,
                week: (i % 4) as u32,
                weekday: Some(Weekday::from_index((i % 7) as u8)),
            })
            .collect()
    }

    #[test]
    fn two_clusters_become_two_motifs() {
        let mut windows: Vec<Vec<f64>> = (0..6).map(evening).collect();
        windows.extend((0..5).map(morning));
        windows.extend((0..4).map(noise));
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        assert!(motifs.len() >= 2, "found {} motifs", motifs.len());
        // The two biggest motifs are the evening and morning clusters.
        assert_eq!(motifs[0].support(), 6);
        assert_eq!(motifs[1].support(), 5);
        let evening_members: Vec<usize> = motifs[0].members.to_vec();
        assert!(evening_members.iter().all(|&i| i < 6));
    }

    #[test]
    fn group_similarity_holds_for_all_pairs() {
        let windows: Vec<Vec<f64>> = (0..8).map(evening).collect();
        let config = MotifConfig::default();
        let motifs = discover_motifs(&windows, &config);
        for m in &motifs {
            for (a, &i) in m.members.iter().enumerate() {
                for &j in &m.members[a + 1..] {
                    let c = cor(&windows[i], &windows[j]);
                    assert!(
                        c >= config.group_threshold() - 1e-6,
                        "pair ({i},{j}) violates group similarity: {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn individual_similarity_holds() {
        let mut windows: Vec<Vec<f64>> = (0..7).map(evening).collect();
        windows.extend((0..7).map(morning));
        let config = MotifConfig::default();
        let motifs = discover_motifs(&windows, &config);
        for m in &motifs {
            for &i in &m.members {
                let has_close = m
                    .members
                    .iter()
                    .any(|&j| j != i && cor(&windows[i], &windows[j]) >= config.phi - 1e-6);
                assert!(has_close, "member {i} has no phi-similar partner");
            }
        }
    }

    #[test]
    fn noise_produces_no_motifs() {
        let windows: Vec<Vec<f64>> = (0..12).map(noise).collect();
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        assert!(
            motifs.iter().all(|m| m.support() <= 3),
            "noise formed a large motif"
        );
    }

    #[test]
    fn support_sorted_descending() {
        let mut windows: Vec<Vec<f64>> = (0..9).map(evening).collect();
        windows.extend((0..4).map(morning));
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        for pair in motifs.windows(2) {
            assert!(pair[0].support() >= pair[1].support());
        }
    }

    #[test]
    fn sparse_windows_excluded() {
        let mut windows: Vec<Vec<f64>> = (0..4).map(evening).collect();
        windows.push(vec![f64::NAN; 8]); // Never joins anything.
        let mut short = vec![f64::NAN; 8];
        short[0] = 1.0;
        windows.push(short);
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        for m in &motifs {
            assert!(m.members.iter().all(|&i| i < 4));
        }
    }

    #[test]
    fn average_pattern_matches_shape() {
        let windows: Vec<Vec<f64>> = (0..5).map(evening).collect();
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        let pattern = motifs[0].average_pattern(&windows);
        assert_eq!(pattern.len(), 8);
        assert!(pattern[7] > pattern[0] * 10.0, "evening bins dominate");
    }

    #[test]
    fn gateway_bookkeeping() {
        let windows: Vec<Vec<f64>> = (0..8).map(evening).collect();
        let refs = refs_for(8);
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        let m = &motifs[0];
        assert_eq!(m.support(), 8);
        assert_eq!(m.gateways(&refs), vec![0, 1]);
        assert!((m.same_gateway_fraction(&refs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weekend_fraction_counts() {
        let windows: Vec<Vec<f64>> = (0..4).map(evening).collect();
        let refs = vec![
            WindowRef {
                gateway: 0,
                week: 0,
                weekday: Some(Weekday::Saturday),
            },
            WindowRef {
                gateway: 0,
                week: 0,
                weekday: Some(Weekday::Sunday),
            },
            WindowRef {
                gateway: 1,
                week: 0,
                weekday: Some(Weekday::Monday),
            },
            WindowRef {
                gateway: 1,
                week: 1,
                weekday: Some(Weekday::Tuesday),
            },
        ];
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        assert_eq!(motifs[0].support(), 4);
        assert!((motifs[0].weekend_fraction(&refs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn indexed_discovery_matches_dense() {
        let mut windows: Vec<Vec<f64>> = (0..6).map(evening).collect();
        windows.extend((0..5).map(morning));
        windows.extend((0..4).map(noise));
        windows.push(vec![f64::NAN; 8]); // Ineligible window in the mix.
        let configs = [
            MotifConfig::default(),
            MotifConfig {
                phi: 0.6,
                ..MotifConfig::default()
            },
            MotifConfig {
                phi: 0.9,
                merge_threshold: 0.85,
                ..MotifConfig::default()
            },
            // Non-positive merge threshold disables pruning entirely; the
            // pruned path must still agree.
            MotifConfig {
                merge_threshold: -0.5,
                ..MotifConfig::default()
            },
        ];
        let index = MotifIndex::new(&windows, MotifConfig::default().min_observations);
        for config in &configs {
            let dense = discover_motifs(&windows, config);
            let pruned = discover_motifs_pruned(&windows, config);
            assert_eq!(dense, pruned, "phi {}", config.phi);
            let indexed = discover_motifs_indexed(&index, config, None);
            assert_eq!(dense, indexed, "indexed, phi {}", config.phi);
        }
    }

    #[test]
    fn one_index_serves_daily_and_weekly_families() {
        // The satellite: one shared sketch index reused across window
        // families and configs, instead of rebuilding per family.
        let windows: Vec<Vec<f64>> = (0..5).map(evening).chain((0..5).map(morning)).collect();
        let index = MotifIndex::new(&windows, 3);
        assert_eq!(index.n_windows(), 10);
        assert_eq!(index.n_eligible(), 10);
        for phi in [0.6, 0.7, 0.8, 0.9] {
            let config = MotifConfig {
                phi,
                ..MotifConfig::default()
            };
            assert_eq!(
                discover_motifs_indexed(&index, &config, None),
                discover_motifs(&windows, &config),
                "phi {phi}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "eligibility cutoff")]
    fn indexed_discovery_rejects_mismatched_cutoff() {
        let windows: Vec<Vec<f64>> = (0..4).map(evening).collect();
        let index = MotifIndex::new(&windows, 5);
        let _ = discover_motifs_indexed(&index, &MotifConfig::default(), None);
    }

    #[test]
    fn merge_threshold_unifies_similar_motifs() {
        // Two offset but positively-correlated evening variants; with a
        // permissive merge threshold they unify.
        let mut windows: Vec<Vec<f64>> = (0..4).map(evening).collect();
        let late: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                (0..8)
                    .map(|b| {
                        let base = if b >= 5 { 900.0 } else { 15.0 };
                        base + ((b * 3 + s * 7) % 9) as f64
                    })
                    .collect()
            })
            .collect();
        windows.extend(late);
        let strict = discover_motifs(
            &windows,
            &MotifConfig {
                merge_threshold: 0.99,
                ..MotifConfig::default()
            },
        );
        let permissive = discover_motifs(
            &windows,
            &MotifConfig {
                merge_threshold: 0.5,
                ..MotifConfig::default()
            },
        );
        assert!(
            permissive.len() <= strict.len(),
            "permissive merging cannot yield more motifs"
        );
    }
}
