//! Multi-scale lagged correlation search over the granularity pyramid.
//!
//! Figure 2 of the paper reads lead/lag structure off individual CCF plots:
//! one gateway's evening peak precedes another's by some number of minutes.
//! This module turns that manual reading into an engine: given a fleet of
//! equally-sampled gateway series, it evaluates the cross-correlation of
//! **every pair at every candidate scale and every lag** and reports the
//! strongest lead/lag relations per scale — without ever re-aggregating a
//! series per `(scale, lag)` cell.
//!
//! # How a cell is computed
//!
//! * Each series is re-binned once per scale through the shared
//!   [`crate::sweep`] source (granularity-pyramid prefix sums with
//!   coarse-level folding; direct summation for non-integer series) — the
//!   same bits [`wtts_timeseries::aggregate`] would produce.
//! * Each re-binned series is prepared once into a [`CcfSide`]: the
//!   deviation vector, finite mask and moments, reusing the
//!   [`wtts_stats::CorProfile`] moments so no pass is repeated. Every
//!   `(scale, lag)` cell is then one fold over the overlap — O(bins),
//!   **bit-identical to a fresh [`wtts_stats::ccf`] call** on the re-binned
//!   slices by construction (`ccf` itself is implemented on the same
//!   kernel). When both sides are complete, all prune-surviving lags of a
//!   row are evaluated by one grouped multi-lag sweep
//!   ([`ccf_cells_batch`], backed by the stats crate's kernel layer), which
//!   shares each pass over the deviation arrays across up to four lags'
//!   independent accumulator chains; gappy sides keep the per-cell
//!   [`ccf_cell_counted`] pairwise-complete walk.
//! * With a reporting threshold `phi > 0`, cells are pruned before exact
//!   work by a three-tier cascade (see below); at `phi = 0` the grid is
//!   dense and exactly equal to the naive reference.
//! * The `pair × scale` task grid fans out over the work-stealing workers
//!   of [`crate::sweep`]'s `run_grid`; every cell writes its own slot and
//!   per-run statistics are summed in row-major order, so results are
//!   **deterministic in the thread count**.
//!
//! # The prune cascade
//!
//! Soundness contract: a pruned cell's exact value is provably `< phi`, so
//! any cell that could reach the report is evaluated exactly (zero false
//! dismissals — the same contract as [`wtts_stats::prune_pair`]).
//!
//! 1. **Degenerate** — a side with no observations or zero variance at
//!    this scale makes every lag undefined; the whole `(pair, scale)` row
//!    is typed [`CorrelogramError`] exactly like [`wtts_stats::ccf`] would.
//! 2. **Sketch (lag 0)** — when the two sides share one finite mask, the
//!    lag-0 cell equals the pairwise Pearson coefficient, so the
//!    [`wtts_stats::CorSketch`] coefficient upper bounds apply verbatim
//!    (only the `Sax`/`Moment` tiers: the sketch's own degenerate tier
//!    reasons about Definition-1 significance, which does not bound a raw
//!    CCF value).
//! 3. **Energy** — per `(series, scale)`, each side precomputes block
//!    energies `E_i = Σ_{t ∈ block i} dev[t]²` on a fixed grid of
//!    `energy_block_bins`-wide blocks, plus their square roots `s_i`. For
//!    a lag `k = qB + r`, Cauchy–Schwarz per block and the subadditivity
//!    of the square root give a **sqrt-free** per-cell bound:
//!    `|Σ_t dx[t+k] dy[t]| ≤ Σ_i (sx[i+q] + sx[i+q+1]) · sy[i]`
//!    (the `+1` straddle term drops out when `r = 0`) — one multiply-add
//!    per block, no transcendental in the hot loop, so the bound costs
//!    about `1/B` of the exact fold it tries to avoid. Bursty traffic
//!    concentrates energy in a few evening blocks, so a lag that misaligns
//!    the bursts pairs each side's big block with the other side's
//!    background and the bound collapses. The observed-pair count is
//!    lower-bounded from missing-count prefixes
//!    (`m ≥ overlap − miss_x − miss_y`). Like the sketch tiers, the
//!    comparison backs off by [`PRUNE_MARGIN`] so float slop cannot cause
//!    a false dismissal.
//!
//! # Reading direction
//!
//! `cells[lag + L]` estimates `corr(x_{t+lag}, y_t)` for a pair `(x, y)`.
//! When `y` repeats `x` delayed by `d` bins (`x` **leads**), the peak sits
//! at `lag = −d`; [`LagSearchResult::top_leads`] folds that convention into
//! explicit leader/follower roles so callers never re-derive the sign.

use crate::engine::{profile_one, sketch_one};
use crate::obs::PipelineObs;
use crate::sweep::{run_grid, SweepSource};
use wtts_stats::{
    ccf_cell_counted, ccf_cells_batch, prune_pair, significance_bound, CcfSide, CorProfile,
    CorSketch, CorrelogramError, PruneTier, SketchConfig, PRUNE_MARGIN,
};
use wtts_timeseries::{Granularity, TimeSeries};

/// Configuration for [`lag_search`].
#[derive(Debug, Clone)]
pub struct LagSearchConfig {
    /// Candidate scales (bin widths) to evaluate, each a multiple of the
    /// input step.
    pub scales: Vec<Granularity>,
    /// Day-start offset shared by every scale, in minutes.
    pub offset_minutes: u32,
    /// Maximum lag in *bins* per scale (clamped to `bins − 1`); the grid
    /// covers `−L ..= L`.
    pub max_lag_bins: usize,
    /// Reporting threshold: cells provably below it are pruned without
    /// exact evaluation. `0.0` disables pruning — the grid is dense and
    /// bit-identical to per-cell [`wtts_stats::ccf`].
    pub phi: f64,
    /// Block width (in bins) of the energy-bound grid. Narrower blocks
    /// tighten the bound — they should be no wider than the bursts that
    /// carry the series' energy — but the bound scan costs `bins / width`
    /// multiply-adds per cell, so very narrow blocks eat the saving.
    pub energy_block_bins: usize,
    /// Sketch resolution for the lag-0 coefficient-bound tier.
    pub sketch: SketchConfig,
    /// Worker threads; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for LagSearchConfig {
    /// Quarter-hour to two-hour scales, a ±24-bin lag window, no pruning.
    fn default() -> LagSearchConfig {
        LagSearchConfig {
            scales: vec![
                Granularity::minutes(15),
                Granularity::minutes(30),
                Granularity::hours(1),
                Granularity::hours(2),
            ],
            offset_minutes: 0,
            max_lag_bins: 24,
            phi: 0.0,
            energy_block_bins: 8,
            sketch: SketchConfig::default(),
            threads: None,
        }
    }
}

/// One `(pair, scale, lag)` cell of the search grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LagCell {
    /// Exactly evaluated: the pairwise-complete CCF estimate and the
    /// number of observed pairs it rests on (`NaN` with count 0 when no
    /// pair is observed at this lag).
    Exact {
        /// The CCF estimate at this lag.
        value: f64,
        /// Observed pairs behind the estimate.
        n_pairs: usize,
    },
    /// Dismissed by a prune tier: the exact value is provably `< phi`.
    Pruned,
}

/// The lag row of one `(pair, scale)`: `cells[lag + L]` estimates
/// `corr(x_{t+lag}, y_t)`, or the typed error a fresh [`wtts_stats::ccf`]
/// call on the re-binned pair would return.
#[derive(Debug, Clone, PartialEq)]
pub struct PairScaleCcf {
    /// The `2L + 1` lag cells, or the degenerate-side error.
    pub cells: Result<Vec<LagCell>, CorrelogramError>,
}

/// Cell accounting for one run: every considered cell lands in exactly one
/// bucket, so `cells_total = pruned() + evaluated` ([`Self::conserved`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LagPruneStats {
    /// `(pair, scale, lag)` cells considered.
    pub cells_total: u64,
    /// Cells dismissed wholesale by a degenerate side.
    pub pruned_degenerate: u64,
    /// Lag-0 cells dismissed by the sketch coefficient bounds.
    pub pruned_sketch: u64,
    /// Cells dismissed by the segmented energy bound.
    pub pruned_energy: u64,
    /// Cells evaluated exactly.
    pub evaluated: u64,
}

impl LagPruneStats {
    /// Cells dismissed by any tier.
    pub fn pruned(&self) -> u64 {
        self.pruned_degenerate + self.pruned_sketch + self.pruned_energy
    }

    /// The conservation law: every cell is pruned or evaluated.
    pub fn conserved(&self) -> bool {
        self.cells_total == self.pruned() + self.evaluated
    }

    /// Fraction of cells dismissed without exact work (0 for an empty run).
    pub fn prune_rate(&self) -> f64 {
        if self.cells_total == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.cells_total as f64
        }
    }

    fn absorb(&mut self, other: &LagPruneStats) {
        self.cells_total += other.cells_total;
        self.pruned_degenerate += other.pruned_degenerate;
        self.pruned_sketch += other.pruned_sketch;
        self.pruned_energy += other.pruned_energy;
        self.evaluated += other.evaluated;
    }
}

/// One reported lead/lag relation (see [`LagSearchResult::top_leads`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadLag {
    /// The series pair `(i, j)` as indexed in the input, `i < j`.
    pub pair: (usize, usize),
    /// The series whose activity comes first.
    pub leader: usize,
    /// The series that repeats it `lead_bins` later.
    pub follower: usize,
    /// Raw grid lag of the peak (`corr(x_{t+lag}, y_t)` convention).
    pub lag_bins: i64,
    /// `|lag_bins|` — how far the follower trails, in bins.
    pub lead_bins: usize,
    /// The lead expressed in minutes at this scale.
    pub lead_minutes: u64,
    /// The peak CCF value.
    pub value: f64,
    /// Observed pairs behind the peak.
    pub n_pairs: usize,
    /// Whether the peak clears the white-noise band `1.96 / √n_pairs` of
    /// its own observed-pair count.
    pub significant: bool,
}

/// The full multi-scale lag-search grid plus its cell accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LagSearchResult {
    /// The scales evaluated, in input order.
    pub scales: Vec<Granularity>,
    /// Day-start offset shared by every scale.
    pub offset_minutes: u32,
    /// The reporting threshold the run pruned against (0 = dense).
    pub phi: f64,
    /// Every unordered series pair `(i, j)`, `i < j`, in row order.
    pub pairs: Vec<(usize, usize)>,
    /// Effective lag bound `L` per scale (`max_lag_bins` clamped to
    /// `bins − 1`).
    pub lag_bins_by_scale: Vec<usize>,
    /// `grid[pair][scale]` — the lag rows.
    pub grid: Vec<Vec<PairScaleCcf>>,
    /// Cell accounting, summed deterministically in row-major order.
    pub stats: LagPruneStats,
}

impl LagSearchResult {
    /// The strongest positive lead/lag relation per pair at one scale,
    /// ranked by peak CCF (ties broken by pair index, then lag — the scan
    /// order is deterministic). At most `k` entries.
    ///
    /// With `phi > 0`, peaks below `phi` are withheld: sub-φ cells may have
    /// been pruned, so only peaks the prune contract guarantees are exact
    /// and complete are comparable across pairs.
    pub fn top_leads(&self, scale_idx: usize, k: usize) -> Vec<LeadLag> {
        let scale = self.scales[scale_idx];
        let l_eff = self.lag_bins_by_scale[scale_idx] as i64;
        let mut out = Vec::new();
        for (p, &(i, j)) in self.pairs.iter().enumerate() {
            let Ok(cells) = &self.grid[p][scale_idx].cells else {
                continue;
            };
            let mut best: Option<(f64, i64, usize)> = None;
            for (idx, cell) in cells.iter().enumerate() {
                if let LagCell::Exact { value, n_pairs } = *cell {
                    if value.is_finite()
                        && value > 0.0
                        && best.is_none_or(|(best_value, _, _)| value > best_value)
                    {
                        best = Some((value, idx as i64 - l_eff, n_pairs));
                    }
                }
            }
            let Some((value, lag_bins, n_pairs)) = best else {
                continue;
            };
            if self.phi > 0.0 && value < self.phi {
                continue;
            }
            // Peak at a negative lag means x (series i) leads — see the
            // module docs for the sign convention.
            let (leader, follower) = if lag_bins > 0 { (j, i) } else { (i, j) };
            out.push(LeadLag {
                pair: (i, j),
                leader,
                follower,
                lag_bins,
                lead_bins: lag_bins.unsigned_abs() as usize,
                lead_minutes: lag_bins.unsigned_abs() * scale.as_minutes() as u64,
                value,
                n_pairs,
                significant: value >= significance_bound(n_pairs),
            });
        }
        out.sort_by(|a, b| {
            b.value
                .partial_cmp(&a.value)
                .expect("peaks are finite")
                .then(a.pair.cmp(&b.pair))
                .then(a.lag_bins.cmp(&b.lag_bins))
        });
        out.truncate(k);
        out
    }
}

/// One series' prepared state at one scale: the re-binned kernel side, the
/// profile it was derived from, and (when pruning is on) the sketch and the
/// energy/missingness prefixes the bounds read.
struct Prepared {
    /// Bins at this scale (the re-binned series length).
    n_bins: usize,
    /// The CCF kernel side, or why this scale is degenerate.
    side: Result<CcfSide, CorrelogramError>,
    /// Profile of the re-binned series (mask comparisons, sketch source).
    profile: CorProfile,
    /// Coefficient-bound sketch (pruning runs only).
    sketch: Option<CorSketch>,
    /// Square roots of per-block deviation energies on the fixed
    /// `energy_block_bins` grid, `ceil(n_bins / B)` entries (pruning runs
    /// only).
    seg_sqrt: Vec<f64>,
    /// Prefix counts of missing bins (pruning runs with gaps only; empty
    /// means complete).
    miss: Vec<u32>,
}

impl Prepared {
    /// Missing bins in `[lo, hi)`.
    fn missing_in(&self, lo: usize, hi: usize) -> u32 {
        if self.miss.is_empty() {
            0
        } else {
            self.miss[hi] - self.miss[lo]
        }
    }
}

/// Re-bins and prepares one `(series, scale)` cell.
fn prepare(
    source: &SweepSource<'_>,
    scale: Granularity,
    config: &LagSearchConfig,
    obs: Option<&PipelineObs>,
) -> Prepared {
    let agg = source.rebin(scale, config.offset_minutes, obs);
    let _span = obs.map(|o| o.lag_prepare.enter());
    let vals = agg.values();
    let profile = profile_one(vals, obs);
    let side = CcfSide::from_profile(vals, &profile);
    let prune_on = config.phi > 0.0;
    let sketch = prune_on.then(|| sketch_one(&profile, &config.sketch, obs));
    let (seg_sqrt, miss) = match (&side, prune_on) {
        (Ok(s), true) => {
            let bb = config.energy_block_bins.max(1);
            let mut seg_sqrt = Vec::with_capacity(s.n().div_ceil(bb));
            for block in s.dev().chunks(bb) {
                let e: f64 = block.iter().map(|&d| d * d).sum();
                seg_sqrt.push(e.sqrt());
            }
            let miss = if s.is_complete() {
                Vec::new()
            } else {
                let mut miss = Vec::with_capacity(s.n() + 1);
                miss.push(0u32);
                let mut m = 0u32;
                for t in 0..s.n() {
                    if !s.is_finite_at(t) {
                        m += 1;
                    }
                    miss.push(m);
                }
                miss
            };
            (seg_sqrt, miss)
        }
        _ => (Vec::new(), Vec::new()),
    };
    Prepared {
        n_bins: vals.len(),
        side,
        profile,
        sketch,
        seg_sqrt,
        miss,
    }
}

/// Error precedence matching [`wtts_stats::ccf`]: a side with no
/// observations outranks one that is merely constant.
fn combine_errors(a: CorrelogramError, b: CorrelogramError) -> CorrelogramError {
    if a == CorrelogramError::NoObservations || b == CorrelogramError::NoObservations {
        CorrelogramError::NoObservations
    } else {
        CorrelogramError::ZeroVariance
    }
}

/// Upper bound on the CCF cell at `lag` from the block Cauchy–Schwarz
/// energy bound; `INFINITY` when the bound is vacuous (no observed-pair
/// lower bound), so the caller falls through to exact evaluation.
///
/// Both sides carry precomputed square roots `s_i = sqrt(Σ_{t∈block i}
/// dev[t]²)` on the same fixed grid of `block_bins`-wide blocks anchored at
/// bin 0. Shifting x by `lag = q·B + r` maps y-block `i` into at most two
/// x-blocks (`i+q` and, when `r ≠ 0`, `i+q+1`), so per block
///
/// ```text
/// |Σ_{t∈block i} dx[t+lag]·dy[t]| ≤ sqrt(Ex_i(lag))·sy_i
///                                 ≤ (sx_{i+q} + sx_{i+q+1})·sy_i
/// ```
///
/// by Cauchy–Schwarz and `sqrt(u+v) ≤ sqrt(u)+sqrt(v)`. Out-of-range
/// x-blocks contribute 0; the partial blocks at the overlap's edges only
/// widen the bound (block energies are non-negative). The hot loop is a
/// sqrt-free `n/B` multiply-add scan, far cheaper than the exact `n`-long
/// fold it gates.
fn energy_upper_bound(
    a: &Prepared,
    b: &Prepared,
    side_a: &CcfSide,
    side_b: &CcfSide,
    lag: i64,
    block_bins: usize,
) -> f64 {
    let n = side_a.n();
    let k = lag.unsigned_abs() as usize;
    let overlap = n - k;
    let (xoff, yoff) = if lag >= 0 { (k, 0) } else { (0, k) };
    // Observed pairs m ≥ overlap − miss_x − miss_y (inclusion–exclusion);
    // a vacuous bound also covers the m = 0 ⇒ NaN cell, which must never
    // be pruned.
    let miss =
        a.missing_in(xoff, xoff + overlap) as i64 + b.missing_in(yoff, yoff + overlap) as i64;
    let m_lb = overlap as i64 - miss;
    if m_lb <= 0 {
        return f64::INFINITY;
    }
    let bb = block_bins.max(1) as i64;
    // x-index u = y-index v + lag for both lag signs, so y-block i maps to
    // x-blocks i + q (and i + q + 1 when the shift straddles the grid).
    let q = lag.div_euclid(bb);
    let straddle = lag.rem_euclid(bb) != 0;
    let i_lo = yoff / bb as usize;
    let i_hi = (yoff + overlap - 1) / bb as usize;
    let sx = &a.seg_sqrt;
    let sy = &b.seg_sqrt;
    let sx_at = |i: i64| {
        if i >= 0 && (i as usize) < sx.len() {
            sx[i as usize]
        } else {
            0.0
        }
    };
    let mut ub_num = 0.0;
    for (i, &syi) in sy.iter().enumerate().take(i_hi + 1).skip(i_lo) {
        let mut x = sx_at(i as i64 + q);
        if straddle {
            x += sx_at(i as i64 + q + 1);
        }
        ub_num += x * syi;
    }
    if side_a.is_complete() && side_b.is_complete() {
        ub_num / (side_a.sxx() * side_b.sxx()).sqrt()
    } else {
        let taper = overlap as f64 / n as f64;
        (ub_num / m_lb as f64) * taper / (side_a.sd() * side_b.sd())
    }
}

/// Computes one `(pair, scale)` lag row through the prune cascade.
fn pair_scale_cells(
    a: &Prepared,
    b: &Prepared,
    l_eff: usize,
    config: &LagSearchConfig,
    obs: Option<&PipelineObs>,
) -> (Result<Vec<LagCell>, CorrelogramError>, LagPruneStats) {
    let n_cells = 2 * l_eff as u64 + 1;
    let mut stats = LagPruneStats {
        cells_total: n_cells,
        ..Default::default()
    };
    let row = pair_scale_row(a, b, l_eff, config, &mut stats);
    debug_assert!(stats.conserved(), "every cell lands in one bucket");
    if let Some(o) = obs {
        o.lag_cells_total.add(stats.cells_total);
        o.lag_cells_pruned_degenerate.add(stats.pruned_degenerate);
        o.lag_cells_pruned_sketch.add(stats.pruned_sketch);
        o.lag_cells_pruned_energy.add(stats.pruned_energy);
        o.lag_cells_evaluated.add(stats.evaluated);
    }
    (row, stats)
}

fn pair_scale_row(
    a: &Prepared,
    b: &Prepared,
    l_eff: usize,
    config: &LagSearchConfig,
    stats: &mut LagPruneStats,
) -> Result<Vec<LagCell>, CorrelogramError> {
    let (side_a, side_b) = match (&a.side, &b.side) {
        (Ok(side_a), Ok(side_b)) => (side_a, side_b),
        (Err(ea), Err(eb)) => {
            stats.pruned_degenerate = stats.cells_total;
            return Err(combine_errors(*ea, *eb));
        }
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => {
            stats.pruned_degenerate = stats.cells_total;
            return Err(*e);
        }
    };
    let prune_on = config.phi > 0.0;
    // Lag 0 on a shared mask is the pairwise Pearson coefficient, so the
    // sketch bounds apply. Only the Sax/Moment tiers prove `value < phi`;
    // the sketch's degenerate tier is about Definition-1 significance and
    // must not dismiss a raw CCF cell.
    let lag0_sketch_pruned = prune_on
        && a.profile.same_mask(&b.profile)
        && match (&a.sketch, &b.sketch) {
            (Some(sketch_a), Some(sketch_b)) => matches!(
                prune_pair(sketch_a, sketch_b, config.phi),
                Some(PruneTier::Sax) | Some(PruneTier::Moment)
            ),
            _ => false,
        };
    // Prune pass first: survivors get placeholder cells, so the
    // complete-complete case (the common one — gaps are per-series rare)
    // can evaluate all surviving lags in one grouped multi-lag kernel
    // sweep instead of re-walking the overlap once per lag.
    let mut cells = Vec::with_capacity(2 * l_eff + 1);
    let mut survivors: Vec<i64> = Vec::with_capacity(2 * l_eff + 1);
    for idx in 0..=2 * l_eff {
        let lag = idx as i64 - l_eff as i64;
        if lag == 0 && lag0_sketch_pruned {
            cells.push(LagCell::Pruned);
            stats.pruned_sketch += 1;
            continue;
        }
        if prune_on
            && energy_upper_bound(a, b, side_a, side_b, lag, config.energy_block_bins)
                < config.phi - PRUNE_MARGIN
        {
            cells.push(LagCell::Pruned);
            stats.pruned_energy += 1;
            continue;
        }
        cells.push(LagCell::Exact {
            value: f64::NAN,
            n_pairs: 0,
        });
        survivors.push(lag);
        stats.evaluated += 1;
    }
    if side_a.is_complete() && side_b.is_complete() {
        // Batched cells are bit-identical to per-lag `ccf_cell_counted`
        // (see `ccf_cells_batch`); the pair count over complete sides is
        // the full overlap.
        let mut values = Vec::with_capacity(survivors.len());
        ccf_cells_batch(side_a, side_b, &survivors, &mut values);
        let n = side_a.n();
        let mut batched = values.iter().zip(&survivors);
        for cell in cells.iter_mut() {
            if let LagCell::Exact { value, n_pairs } = cell {
                let (&v, &lag) = batched.next().expect("one batched value per survivor");
                *value = v;
                *n_pairs = n - lag.unsigned_abs() as usize;
            }
        }
    } else {
        let mut remaining = survivors.iter();
        for cell in cells.iter_mut() {
            if let LagCell::Exact { value, n_pairs } = cell {
                let &lag = remaining.next().expect("one survivor per placeholder");
                let (v, m) = ccf_cell_counted(side_a, side_b, lag);
                *value = v;
                *n_pairs = m;
            }
        }
    }
    Ok(cells)
}

fn resolved_threads(threads: Option<usize>) -> usize {
    threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Runs the multi-scale lagged correlation search over a fleet of
/// equally-sampled series (see the module docs for the architecture and
/// guarantees).
///
/// # Panics
/// Panics if `config.scales` is empty, a scale is not a multiple of the
/// input step, or the series disagree on start, step or length.
pub fn lag_search(
    series: &[TimeSeries],
    config: &LagSearchConfig,
    obs: Option<&PipelineObs>,
) -> LagSearchResult {
    assert!(!config.scales.is_empty(), "lag search needs a scale");
    if let Some(first) = series.first() {
        for s in &series[1..] {
            assert_eq!(s.start(), first.start(), "series must share a start");
            assert_eq!(
                s.step_minutes(),
                first.step_minutes(),
                "series must share a step"
            );
            assert_eq!(s.len(), first.len(), "series must share a length");
        }
    }
    let threads = resolved_threads(config.threads);
    let n_scales = config.scales.len();
    let candidates: Vec<(Granularity, u32)> = config
        .scales
        .iter()
        .map(|&g| (g, config.offset_minutes))
        .collect();
    let sources: Vec<SweepSource<'_>> = series
        .iter()
        .map(|s| SweepSource::build(s, &candidates, obs))
        .collect();
    let prepared = run_grid(series.len(), n_scales, threads, |r, c, _scratch| {
        prepare(&sources[r], config.scales[c], config, obs)
    });
    // All series share one geometry, so the effective lag bound per scale
    // is common: `max_lag_bins` clamped to the bin count minus one.
    let lag_bins_by_scale: Vec<usize> = (0..n_scales)
        .map(|c| {
            let n_bins = prepared.first().map(|row| row[c].n_bins).unwrap_or(0);
            config.max_lag_bins.min(n_bins.saturating_sub(1))
        })
        .collect();
    let pairs: Vec<(usize, usize)> = (0..series.len())
        .flat_map(|i| ((i + 1)..series.len()).map(move |j| (i, j)))
        .collect();
    let raw = run_grid(pairs.len(), n_scales, threads, |p, c, _scratch| {
        let _span = obs.map(|o| o.lag_pair_scan.enter());
        let (i, j) = pairs[p];
        pair_scale_cells(
            &prepared[i][c],
            &prepared[j][c],
            lag_bins_by_scale[c],
            config,
            obs,
        )
    });
    let mut stats = LagPruneStats::default();
    let grid: Vec<Vec<PairScaleCcf>> = raw
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|(cells, cell_stats)| {
                    stats.absorb(&cell_stats);
                    PairScaleCcf { cells }
                })
                .collect()
        })
        .collect();
    LagSearchResult {
        scales: config.scales.clone(),
        offset_minutes: config.offset_minutes,
        phi: config.phi,
        pairs,
        lag_bins_by_scale,
        grid,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_stats::ccf;
    use wtts_timeseries::{aggregate, MINUTES_PER_DAY, MINUTES_PER_WEEK};

    /// A deterministic bursty fleet: every gateway shares a daily evening
    /// burst, phase-shifted per gateway, over small pseudo-random
    /// background with scattered gaps. Integer values (pyramid-eligible).
    fn fleet(n: usize, weeks: u32) -> Vec<TimeSeries> {
        (0..n)
            .map(|g| {
                let shift = g * 45;
                let minutes = (weeks * MINUTES_PER_WEEK) as usize;
                let v: Vec<f64> = (0..minutes)
                    .map(|m| {
                        if (m * 31 + g * 7) % 211 == 5 {
                            f64::NAN
                        } else {
                            let phase = (m + 7 * MINUTES_PER_DAY as usize - shift)
                                % MINUTES_PER_DAY as usize;
                            let burst = if (1140..1260).contains(&phase) && m % 3 != 1 {
                                4_000
                            } else {
                                0
                            };
                            (burst + (m * 17 + g * 13) % 23) as f64
                        }
                    })
                    .collect();
                TimeSeries::per_minute(v)
            })
            .collect()
    }

    /// The naive reference: per `(pair, scale)`, re-aggregate both series
    /// from scratch and run the dense [`ccf`].
    fn naive_grid(
        series: &[TimeSeries],
        config: &LagSearchConfig,
    ) -> Vec<Vec<Result<Vec<f64>, CorrelogramError>>> {
        let mut grid = Vec::new();
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                let mut row = Vec::new();
                for &g in &config.scales {
                    let xa = aggregate(&series[i], g, config.offset_minutes);
                    let xb = aggregate(&series[j], g, config.offset_minutes);
                    row.push(ccf(xa.values(), xb.values(), config.max_lag_bins));
                }
                grid.push(row);
            }
        }
        grid
    }

    fn dense_config() -> LagSearchConfig {
        LagSearchConfig {
            scales: vec![Granularity::minutes(30), Granularity::hours(1)],
            max_lag_bins: 8,
            phi: 0.0,
            threads: Some(1),
            ..Default::default()
        }
    }

    #[test]
    fn dense_grid_bit_identical_to_naive_reference() {
        let series = fleet(3, 1);
        let config = dense_config();
        let result = lag_search(&series, &config, None);
        let reference = naive_grid(&series, &config);
        assert_eq!(result.pairs.len(), 3);
        for (p, row) in reference.iter().enumerate() {
            for (c, cells_ref) in row.iter().enumerate() {
                let got = &result.grid[p][c].cells;
                let cells_ref = cells_ref.as_ref().expect("live fixture");
                let got = got.as_ref().expect("live fixture");
                assert_eq!(got.len(), cells_ref.len());
                for (idx, (&want, cell)) in cells_ref.iter().zip(got).enumerate() {
                    let LagCell::Exact { value, n_pairs } = *cell else {
                        panic!("dense run must not prune (pair {p} scale {c} idx {idx})");
                    };
                    assert_eq!(
                        want.to_bits(),
                        value.to_bits(),
                        "pair {p} scale {c} idx {idx}"
                    );
                    assert!(n_pairs > 0);
                }
            }
        }
        assert!(result.stats.conserved());
        assert_eq!(result.stats.pruned(), 0);
        assert_eq!(result.stats.evaluated, result.stats.cells_total);
    }

    #[test]
    fn dense_grid_matches_reference_for_fractional_series() {
        // Non-integer values force the direct-aggregation path.
        let series: Vec<TimeSeries> = fleet(2, 1)
            .into_iter()
            .map(|s| {
                let v: Vec<f64> = s.values().iter().map(|&x| x * 0.25).collect();
                TimeSeries::per_minute(v)
            })
            .collect();
        let config = dense_config();
        let result = lag_search(&series, &config, None);
        let reference = naive_grid(&series, &config);
        for (c, cells_ref) in reference[0].iter().enumerate() {
            let cells_ref = cells_ref.as_ref().unwrap();
            let got = result.grid[0][c].cells.as_ref().unwrap();
            for (idx, (&want, cell)) in cells_ref.iter().zip(got).enumerate() {
                let LagCell::Exact { value, .. } = *cell else {
                    panic!("dense run must not prune");
                };
                assert_eq!(want.to_bits(), value.to_bits(), "scale {c} idx {idx}");
            }
        }
    }

    #[test]
    fn degenerate_sides_get_the_reference_error() {
        let live = fleet(1, 1).remove(0);
        let n = live.len();
        let constant = TimeSeries::per_minute(vec![7.0; n]);
        let missing = TimeSeries::per_minute(vec![f64::NAN; n]);
        let series = vec![live, constant, missing];
        let config = dense_config();
        let result = lag_search(&series, &config, None);
        let reference = naive_grid(&series, &config);
        for (p, row) in reference.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                match (&result.grid[p][c].cells, want) {
                    (Err(got), Err(want)) => assert_eq!(got, want, "pair {p} scale {c}"),
                    (Ok(_), Ok(_)) => {}
                    other => panic!("presence mismatch at pair {p} scale {c}: {other:?}"),
                }
            }
        }
        // Degenerate rows are fully accounted as pruned cells.
        assert!(result.stats.conserved());
        assert!(result.stats.pruned_degenerate > 0);
    }

    #[test]
    fn pruning_never_dismisses_a_reportable_cell() {
        let series = fleet(4, 2);
        let phi = 0.85;
        let config = LagSearchConfig {
            scales: vec![Granularity::minutes(30), Granularity::hours(2)],
            max_lag_bins: 24,
            phi,
            threads: Some(1),
            ..Default::default()
        };
        let result = lag_search(&series, &config, None);
        let dense = naive_grid(&series, &config);
        let mut pruned_seen = 0u64;
        for (p, row) in dense.iter().enumerate() {
            for (c, cells_ref) in row.iter().enumerate() {
                let cells_ref = cells_ref.as_ref().unwrap();
                let got = result.grid[p][c].cells.as_ref().unwrap();
                for (idx, (&want, cell)) in cells_ref.iter().zip(got).enumerate() {
                    match *cell {
                        LagCell::Exact { value, .. } => {
                            assert_eq!(
                                want.to_bits(),
                                value.to_bits(),
                                "pair {p} scale {c} idx {idx}"
                            );
                        }
                        LagCell::Pruned => {
                            pruned_seen += 1;
                            assert!(
                                want < phi,
                                "pruned cell at pair {p} scale {c} idx {idx} \
                                 has reference value {want} ≥ φ = {phi}"
                            );
                        }
                    }
                }
            }
        }
        assert!(result.stats.conserved());
        assert_eq!(result.stats.pruned(), pruned_seen);
        assert!(
            result.stats.pruned_energy > 0,
            "the bursty fixture must exercise the energy tier: {:?}",
            result.stats
        );
    }

    #[test]
    fn deterministic_in_thread_count() {
        let series = fleet(4, 1);
        let mut config = LagSearchConfig {
            scales: vec![Granularity::minutes(15), Granularity::hours(1)],
            max_lag_bins: 12,
            phi: 0.8,
            threads: Some(1),
            ..Default::default()
        };
        let reference = lag_search(&series, &config, None);
        for threads in [2usize, 4, 7] {
            config.threads = Some(threads);
            let parallel = lag_search(&series, &config, None);
            assert_eq!(reference, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn observability_counters_match_stats_and_results() {
        let series = fleet(3, 1);
        let config = LagSearchConfig {
            scales: vec![Granularity::minutes(30), Granularity::hours(1)],
            max_lag_bins: 10,
            phi: 0.9,
            threads: Some(2),
            ..Default::default()
        };
        let obs = PipelineObs::new();
        let with_obs = lag_search(&series, &config, Some(&obs));
        let without = lag_search(&series, &config, None);
        assert_eq!(with_obs, without, "observability must not change results");
        let snap = obs.snapshot();
        assert!(snap.conserved());
        assert!(snap.quiescent());
        let stats = with_obs.stats;
        assert_eq!(snap.counter("lag_cells_total"), stats.cells_total);
        assert_eq!(
            snap.counter("lag_cells_pruned_degenerate"),
            stats.pruned_degenerate
        );
        assert_eq!(snap.counter("lag_cells_pruned_sketch"), stats.pruned_sketch);
        assert_eq!(snap.counter("lag_cells_pruned_energy"), stats.pruned_energy);
        assert_eq!(snap.counter("lag_cells_evaluated"), stats.evaluated);
        let entered = |name: &str| {
            snap.stages
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.entered)
                .unwrap()
        };
        assert_eq!(entered("lag_prepare"), (3 * config.scales.len()) as u64);
        assert_eq!(entered("lag_pair_scan"), (3 * config.scales.len()) as u64);
        assert_eq!(entered("rebin"), (3 * config.scales.len()) as u64);
    }

    #[test]
    fn top_leads_recovers_a_planted_lead() {
        // Gateway 1 repeats gateway 0 delayed by 60 minutes; gateway 2 is
        // unrelated noise.
        let week = MINUTES_PER_WEEK as usize;
        let base: Vec<f64> = (0..week + 60)
            .map(|m| {
                let phase = m % MINUTES_PER_DAY as usize;
                let burst = if (1140..1260).contains(&phase) && m % 4 != 2 {
                    3_000
                } else {
                    0
                };
                (burst + (m * 29 + 3) % 31) as f64
            })
            .collect();
        let leader = TimeSeries::per_minute(base[60..].to_vec());
        let follower = TimeSeries::per_minute(base[..week].to_vec());
        let noise =
            TimeSeries::per_minute((0..week).map(|m| ((m * 997 + 11) % 83) as f64).collect());
        let config = LagSearchConfig {
            scales: vec![Granularity::minutes(30)],
            max_lag_bins: 6,
            phi: 0.9,
            threads: Some(1),
            ..Default::default()
        };
        let result = lag_search(&[leader, follower, noise], &config, None);
        let leads = result.top_leads(0, 3);
        assert!(!leads.is_empty());
        let top = leads[0];
        assert_eq!(top.pair, (0, 1));
        assert_eq!(top.leader, 0, "gateway 0 acts first");
        assert_eq!(top.follower, 1);
        assert_eq!(top.lag_bins, -2, "peak at corr(x_{{t-2}}, y_t)");
        assert_eq!(top.lead_bins, 2);
        assert_eq!(top.lead_minutes, 60);
        assert!(top.value > 0.95, "near-copy peak: {}", top.value);
        assert!(top.significant);
        // The noise pairs never clear φ = 0.9.
        assert_eq!(leads.len(), 1);
    }

    #[test]
    fn lag_bound_clamps_to_series_length() {
        let series = fleet(2, 1);
        let config = LagSearchConfig {
            // One bin per week at this scale: only lag 0 exists.
            scales: vec![Granularity::minutes(MINUTES_PER_WEEK)],
            max_lag_bins: 24,
            phi: 0.0,
            threads: Some(1),
            ..Default::default()
        };
        let result = lag_search(&series, &config, None);
        assert_eq!(result.lag_bins_by_scale, vec![0]);
        match &result.grid[0][0].cells {
            Ok(cells) => assert_eq!(cells.len(), 1),
            // A single bin has zero variance: the typed error is also a
            // legal outcome depending on the fixture.
            Err(e) => assert_eq!(*e, CorrelogramError::ZeroVariance),
        }
    }

    #[test]
    fn degenerate_fleets_are_empty_not_panicking() {
        let config = dense_config();
        let empty = lag_search(&[], &config, None);
        assert!(empty.pairs.is_empty() && empty.grid.is_empty());
        assert_eq!(empty.stats, LagPruneStats::default());
        let single = lag_search(&fleet(1, 1), &config, None);
        assert!(single.pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn mismatched_series_are_rejected() {
        let mut series = fleet(2, 1);
        series[1] = TimeSeries::per_minute(vec![1.0, 2.0, 3.0]);
        let _ = lag_search(&series, &dense_config(), None);
    }
}
