//! Maintenance-window planning — the paper's headline ISP application.
//!
//! The introduction motivates the whole framework with remote management:
//! ISPs "broadcast firmware and software updates to all gateways at nights
//! … some gateways may exhibit an active network usage during night time. A
//! fine-grained temporal characterization … will enable ISPs to
//! differentiate RGWs firmware update policies according to the least
//! cumbersome time window per home". This module turns an analyzed traffic
//! series into exactly that recommendation.

use wtts_timeseries::{TimeSeries, Weekday, MINUTES_PER_DAY};

/// A recommended maintenance window for one gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceWindow {
    /// Day of week the window falls on.
    pub weekday: Weekday,
    /// Window start, minutes after that day's midnight.
    pub start_minute: u32,
    /// Window length in minutes.
    pub duration_minutes: u32,
    /// Mean active bytes expected inside the window (per occurrence).
    pub expected_bytes: f64,
    /// Share of historical window occurrences with zero active traffic.
    pub silent_share: f64,
}

impl MaintenanceWindow {
    /// Human-readable `Tue 03:30-04:30`-style label.
    pub fn label(&self) -> String {
        let end = self.start_minute + self.duration_minutes;
        format!(
            "{} {:02}:{:02}-{:02}:{:02}",
            self.weekday,
            self.start_minute / 60,
            self.start_minute % 60,
            (end / 60) % 24,
            end % 60
        )
    }
}

/// The weekly activity profile a recommendation is computed from: mean
/// active bytes per (weekday, slot) cell.
#[derive(Debug, Clone)]
pub struct WeeklyProfile {
    /// Slot width in minutes.
    pub slot_minutes: u32,
    /// `7 × slots_per_day` mean bytes, row-major by weekday.
    pub mean_bytes: Vec<f64>,
    /// Same shape: share of occurrences with zero traffic.
    pub silent_share: Vec<f64>,
    slots_per_day: usize,
}

impl WeeklyProfile {
    /// Builds the profile of an *active* (background-removed) per-minute
    /// traffic series.
    ///
    /// Returns `None` for a series with no observations.
    ///
    /// # Panics
    /// Panics if `slot_minutes` does not divide a day.
    pub fn from_active_series(series: &TimeSeries, slot_minutes: u32) -> Option<WeeklyProfile> {
        assert!(
            MINUTES_PER_DAY.is_multiple_of(slot_minutes),
            "slot width must divide the day"
        );
        assert_eq!(series.step_minutes(), 1, "profile expects per-minute data");
        if series.observed_count() == 0 {
            return None;
        }
        let slots_per_day = (MINUTES_PER_DAY / slot_minutes) as usize;
        let cells = 7 * slots_per_day;
        let mut sums = vec![0.0; cells];
        let mut occurrences = vec![0u32; cells];
        let mut silent = vec![0u32; cells];

        // Accumulate per-slot totals per occurrence (one occurrence = one
        // calendar slot instance), so "silent" means a whole slot instance
        // without active traffic.
        let n_slot_instances = series.len().div_ceil(slot_minutes as usize);
        for inst in 0..n_slot_instances {
            let start = series.start().plus(inst as u32 * slot_minutes);
            let cell = start.weekday().index() as usize * slots_per_day
                + (start.minute_of_day() / slot_minutes) as usize;
            let mut total = 0.0;
            let mut any = false;
            for k in 0..slot_minutes as usize {
                let idx = inst * slot_minutes as usize + k;
                if let Some(&v) = series.values().get(idx) {
                    if v.is_finite() {
                        total += v;
                        any = true;
                    }
                }
            }
            if any {
                sums[cell] += total;
                occurrences[cell] += 1;
                if total == 0.0 {
                    silent[cell] += 1;
                }
            }
        }

        let mean_bytes = sums
            .iter()
            .zip(&occurrences)
            .map(|(&s, &n)| if n > 0 { s / n as f64 } else { f64::NAN })
            .collect();
        let silent_share = silent
            .iter()
            .zip(&occurrences)
            .map(|(&z, &n)| if n > 0 { z as f64 / n as f64 } else { f64::NAN })
            .collect();
        Some(WeeklyProfile {
            slot_minutes,
            mean_bytes,
            silent_share,
            slots_per_day,
        })
    }

    /// Mean bytes in the cell for `weekday` at `slot`.
    pub fn cell(&self, weekday: Weekday, slot: usize) -> f64 {
        self.mean_bytes[weekday.index() as usize * self.slots_per_day + slot]
    }

    /// Recommends the contiguous window of `duration_minutes` (a multiple
    /// of the slot width) with the lowest expected activity, searching all
    /// weekdays and allowing windows to wrap past midnight into the next
    /// day.
    ///
    /// Returns `None` when no window has fully observed cells.
    pub fn recommend(&self, duration_minutes: u32) -> Option<MaintenanceWindow> {
        assert!(
            duration_minutes.is_multiple_of(self.slot_minutes) && duration_minutes > 0,
            "duration must be a positive multiple of the slot width"
        );
        let span = (duration_minutes / self.slot_minutes) as usize;
        let week_slots = 7 * self.slots_per_day;
        let mut best: Option<(usize, f64, f64)> = None; // (start cell, bytes, silent)
        for start in 0..week_slots {
            let mut bytes = 0.0;
            let mut silent = 0.0;
            let mut ok = true;
            for k in 0..span {
                let cell = (start + k) % week_slots;
                let b = self.mean_bytes[cell];
                if !b.is_finite() {
                    ok = false;
                    break;
                }
                bytes += b;
                silent += self.silent_share[cell];
            }
            if !ok {
                continue;
            }
            let silent = silent / span as f64;
            if best.is_none_or(|(_, bb, _)| bytes < bb) {
                best = Some((start, bytes, silent));
            }
        }
        let (start, bytes, silent) = best?;
        let weekday = Weekday::from_index((start / self.slots_per_day) as u8);
        Some(MaintenanceWindow {
            weekday,
            start_minute: (start % self.slots_per_day) as u32 * self.slot_minutes,
            duration_minutes,
            expected_bytes: bytes,
            silent_share: silent,
        })
    }

    /// The busiest cell — useful to sanity-check a recommendation against.
    pub fn peak(&self) -> Option<(Weekday, u32, f64)> {
        let (cell, &bytes) = self
            .mean_bytes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))?;
        Some((
            Weekday::from_index((cell / self.slots_per_day) as u8),
            (cell % self.slots_per_day) as u32 * self.slot_minutes,
            bytes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_timeseries::{Minute, MINUTES_PER_WEEK};

    /// Two weeks of per-minute traffic: busy every evening 19-22, plus a
    /// Saturday-morning block; everything else silent.
    fn synthetic() -> TimeSeries {
        let minutes = 2 * MINUTES_PER_WEEK as usize;
        let values: Vec<f64> = (0..minutes)
            .map(|m| {
                let t = Minute(m as u32);
                let hour = t.hour();
                if (19..22).contains(&hour) {
                    5_000.0
                } else if t.weekday() == Weekday::Saturday && (9..12).contains(&hour) {
                    8_000.0
                } else {
                    0.0
                }
            })
            .collect();
        TimeSeries::per_minute(values)
    }

    #[test]
    fn recommends_a_quiet_window() {
        let profile = WeeklyProfile::from_active_series(&synthetic(), 60).unwrap();
        let w = profile.recommend(120).unwrap();
        // Any window fully inside the nightly silence qualifies; it must not
        // overlap 19-22 on any day nor Saturday morning.
        let start_h = w.start_minute / 60;
        let end_h = (w.start_minute + w.duration_minutes) / 60;
        assert!(w.expected_bytes == 0.0, "{w:?}");
        assert!(w.silent_share == 1.0);
        assert!(
            end_h <= 19 || start_h >= 22,
            "window {w:?} hits the evening"
        );
    }

    #[test]
    fn peak_is_saturday_morning() {
        let profile = WeeklyProfile::from_active_series(&synthetic(), 60).unwrap();
        let (day, start_minute, bytes) = profile.peak().unwrap();
        assert_eq!(day, Weekday::Saturday);
        assert!((9 * 60..12 * 60).contains(&start_minute));
        assert!(bytes > 400_000.0);
    }

    #[test]
    fn window_can_wrap_midnight() {
        // Activity everywhere except 23:00-01:00.
        let minutes = MINUTES_PER_WEEK as usize;
        let values: Vec<f64> = (0..minutes)
            .map(|m| {
                let hour = Minute(m as u32).hour();
                if !(1..23).contains(&hour) {
                    0.0
                } else {
                    1_000.0
                }
            })
            .collect();
        let profile =
            WeeklyProfile::from_active_series(&TimeSeries::per_minute(values), 60).unwrap();
        let w = profile.recommend(120).unwrap();
        assert_eq!(w.start_minute, 23 * 60, "{w:?}");
        assert_eq!(w.expected_bytes, 0.0);
    }

    #[test]
    fn labels_render() {
        let w = MaintenanceWindow {
            weekday: Weekday::Tuesday,
            start_minute: 3 * 60 + 30,
            duration_minutes: 60,
            expected_bytes: 0.0,
            silent_share: 1.0,
        };
        assert_eq!(w.label(), "Tue 03:30-04:30");
    }

    #[test]
    fn empty_series_is_none() {
        let empty = TimeSeries::per_minute(vec![f64::NAN; 100]);
        assert!(WeeklyProfile::from_active_series(&empty, 60).is_none());
    }

    #[test]
    fn cell_lookup() {
        let profile = WeeklyProfile::from_active_series(&synthetic(), 60).unwrap();
        // Monday 20:00 is busy; Monday 03:00 silent.
        assert!(profile.cell(Weekday::Monday, 20) > 100_000.0);
        assert_eq!(profile.cell(Weekday::Monday, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of the slot width")]
    fn bad_duration_rejected() {
        let profile = WeeklyProfile::from_active_series(&synthetic(), 60).unwrap();
        let _ = profile.recommend(90);
    }
}
