//! Dominant devices (Definition 4).
//!
//! A device is *φ-dominant* for its gateway when the correlation similarity
//! between its traffic and the gateway's overall traffic exceeds φ (the
//! paper uses φ = 0.6, with a stricter φ = 0.8 variant). Dominant devices
//! are ranked by descending similarity; Section 6.2 compares this notion
//! against two baselines — ranking devices by ascending Euclidean distance
//! to the gateway series, and by descending total traffic volume — and
//! shows correlation dominance catches low-volume devices that *shape* the
//! gateway's behavior.

use crate::similarity::correlation_similarity;
use wtts_stats::euclidean;
use wtts_timeseries::TimeSeries;

/// The paper's dominance threshold.
pub const DOMINANCE_PHI: f64 = 0.6;

/// One φ-dominant device of a gateway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DominantDevice {
    /// Index of the device within the gateway's device list.
    pub device: usize,
    /// Correlation similarity with the gateway's overall traffic.
    pub similarity: f64,
    /// Dominance rank: 0 = most similar ("first dominant").
    pub rank: usize,
}

/// Finds the φ-dominant devices of a gateway, ranked by descending
/// correlation similarity (Definition 4).
///
/// `device_series` holds each device's overall traffic aligned with
/// `gateway_total`. Only significant correlations count (Definition 1
/// returns 0 otherwise).
pub fn dominant_devices(
    gateway_total: &TimeSeries,
    device_series: &[TimeSeries],
    phi: f64,
) -> Vec<DominantDevice> {
    let hits: Vec<(usize, f64)> = device_series
        .iter()
        .enumerate()
        .filter_map(|(i, dev)| {
            let sim = correlation_similarity(gateway_total.values(), dev.values());
            (sim.value > phi).then_some((i, sim.value))
        })
        .collect();
    rank_dominants(hits)
}

/// Ranks `(device, similarity)` hits into [`DominantDevice`]s by descending
/// similarity — the ranking half of Definition 4, shared by the batch path
/// above and the streaming-ingest dominance tracker (which computes its
/// similarities incrementally with `OnlinePearson` instead).
pub fn rank_dominants(mut hits: Vec<(usize, f64)>) -> Vec<DominantDevice> {
    hits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
    hits.into_iter()
        .enumerate()
        .map(|(rank, (device, similarity))| DominantDevice {
            device,
            similarity,
            rank,
        })
        .collect()
}

/// Devices ranked by ascending Euclidean distance to the gateway series —
/// the first baseline of Section 6.2. Returns device indices, closest first.
pub fn euclidean_ranking(gateway_total: &TimeSeries, device_series: &[TimeSeries]) -> Vec<usize> {
    let mut order: Vec<(usize, f64)> = device_series
        .iter()
        .enumerate()
        .map(|(i, dev)| (i, euclidean(gateway_total.values(), dev.values())))
        .collect();
    order.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distance"));
    order.into_iter().map(|(i, _)| i).collect()
}

/// Devices ranked by descending total traffic volume — the second baseline.
pub fn volume_ranking(device_series: &[TimeSeries]) -> Vec<usize> {
    let mut order: Vec<(usize, f64)> = device_series
        .iter()
        .enumerate()
        .map(|(i, dev)| (i, dev.total()))
        .collect();
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite volume"));
    order.into_iter().map(|(i, _)| i).collect()
}

/// Counts how many correlation-dominant devices appear at the *same rank
/// position* in a baseline ranking (the paper's agreement criterion: "the
/// first device in one ranking is also the first in the second ranking and
/// so on").
pub fn ranking_agreement(dominants: &[DominantDevice], baseline: &[usize]) -> usize {
    dominants
        .iter()
        .filter(|d| baseline.get(d.rank) == Some(&d.device))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic gateway: device 0 shapes the total, device 1 is a
    /// constant-ish hum, device 2 is noise.
    fn synthetic() -> (TimeSeries, Vec<TimeSeries>) {
        let n = 500;
        let shaper: Vec<f64> = (0..n)
            .map(|i| {
                if (i / 60) % 4 == 3 {
                    50_000.0 + (i % 7) as f64
                } else {
                    100.0
                }
            })
            .collect();
        let hum: Vec<f64> = (0..n).map(|i| 800.0 + (i % 3) as f64).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64).collect();
        let d0 = TimeSeries::per_minute(shaper);
        let d1 = TimeSeries::per_minute(hum);
        let d2 = TimeSeries::per_minute(noise);
        let total = d0.add(&d1).add(&d2);
        (total, vec![d0, d1, d2])
    }

    #[test]
    fn shaper_is_first_dominant() {
        let (total, devices) = synthetic();
        let dom = dominant_devices(&total, &devices, DOMINANCE_PHI);
        assert!(!dom.is_empty());
        assert_eq!(dom[0].device, 0);
        assert_eq!(dom[0].rank, 0);
        assert!(dom[0].similarity > 0.95);
    }

    #[test]
    fn ranks_descend_in_similarity() {
        let (total, devices) = synthetic();
        let dom = dominant_devices(&total, &devices, 0.0);
        for pair in dom.windows(2) {
            assert!(pair[0].similarity >= pair[1].similarity);
            assert_eq!(pair[1].rank, pair[0].rank + 1);
        }
    }

    #[test]
    fn strict_phi_prunes() {
        let (total, devices) = synthetic();
        let loose = dominant_devices(&total, &devices, 0.6);
        let strict = dominant_devices(&total, &devices, 0.8);
        assert!(strict.len() <= loose.len());
        for d in &strict {
            assert!(d.similarity > 0.8);
        }
    }

    #[test]
    fn low_volume_shaper_detected_only_by_correlation() {
        // A device with tiny volume but perfectly tracking the gateway's
        // rhythm — the case the paper highlights (~15% of dominants).
        let n = 500;
        let big_flat: Vec<f64> = (0..n).map(|_| 100_000.0).collect();
        let small_shaper: Vec<f64> = (0..n)
            .map(|i| {
                if (i / 30) % 5 == 0 {
                    900.0 + (i % 5) as f64
                } else {
                    10.0
                }
            })
            .collect();
        let d0 = TimeSeries::per_minute(big_flat);
        let d1 = TimeSeries::per_minute(small_shaper);
        let total = d0.add(&d1);
        let devices = vec![d0, d1];

        let dom = dominant_devices(&total, &devices, 0.6);
        assert_eq!(dom.first().map(|d| d.device), Some(1), "shaper dominates");
        // Volume ranking puts the flat heavyweight first instead.
        let vol = volume_ranking(&devices);
        assert_eq!(vol[0], 0);
        assert_eq!(ranking_agreement(&dom, &vol), 0);
    }

    #[test]
    fn euclidean_agrees_on_the_obvious_case() {
        let (total, devices) = synthetic();
        let dom = dominant_devices(&total, &devices, 0.6);
        let euc = euclidean_ranking(&total, &devices);
        // The dominant shaper is also the Euclidean-closest series here.
        assert_eq!(euc[0], dom[0].device);
        assert!(ranking_agreement(&dom, &euc) >= 1);
    }

    #[test]
    fn no_dominants_when_nothing_correlates() {
        let n = 200;
        let total = TimeSeries::per_minute((0..n).map(|i| (i % 13) as f64).collect());
        let unrelated = TimeSeries::per_minute((0..n).map(|i| ((i * 7919) % 17) as f64).collect());
        let dom = dominant_devices(&total, &[unrelated], 0.6);
        assert!(dom.is_empty());
    }

    #[test]
    fn agreement_counts_matching_positions() {
        let dominants = vec![
            DominantDevice {
                device: 4,
                similarity: 0.9,
                rank: 0,
            },
            DominantDevice {
                device: 2,
                similarity: 0.8,
                rank: 1,
            },
        ];
        assert_eq!(ranking_agreement(&dominants, &[4, 2, 0]), 2);
        assert_eq!(ranking_agreement(&dominants, &[4, 0, 2]), 1);
        assert_eq!(ranking_agreement(&dominants, &[0, 1]), 0);
        assert_eq!(ranking_agreement(&dominants, &[4]), 1, "short baseline");
    }

    #[test]
    fn rank_dominants_sorts_descending() {
        let ranked = rank_dominants(vec![(3, 0.7), (1, 0.95), (8, 0.82)]);
        assert_eq!(
            ranked.iter().map(|d| d.device).collect::<Vec<_>>(),
            vec![1, 8, 3]
        );
        assert_eq!(
            ranked.iter().map(|d| d.rank).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn volume_ranking_orders_by_total() {
        let a = TimeSeries::per_minute(vec![1.0; 10]);
        let b = TimeSeries::per_minute(vec![5.0; 10]);
        let c = TimeSeries::per_minute(vec![3.0; 10]);
        assert_eq!(volume_ranking(&[a, b, c]), vec![1, 2, 0]);
    }
}
