//! Per-gateway profiling — the "high level profiling of gateways" the paper
//! says ISPs would build from dominant devices, stationarity and motifs
//! (Sections 6.2 and 7.2).
//!
//! [`GatewayProfile::analyze`] runs the full pipeline on one gateway's data
//! and assembles everything an operator would want to know: activity
//! volume, the background threshold picture, strong-stationarity verdicts,
//! the best aggregation granularity, the dominant devices, and a
//! recommended maintenance window.

use crate::aggregation::best_score;
use crate::background::{estimate_tau, remove_background};
use crate::dominance::{dominant_devices, DominantDevice, DOMINANCE_PHI};
use crate::maintenance::{MaintenanceWindow, WeeklyProfile};
use crate::sweep::{weekly_sweep, SweepConfig};
use wtts_timeseries::{Granularity, TimeSeries};

/// Everything the framework can say about one gateway.
#[derive(Debug, Clone)]
pub struct GatewayProfile {
    /// Weeks of data analyzed.
    pub weeks: u32,
    /// Total observed traffic in bytes (in + out, background included).
    pub total_bytes: f64,
    /// Share of the total that survives background removal.
    pub active_share: f64,
    /// Observation coverage of the overall series, `[0, 1]`.
    pub coverage: f64,
    /// Dominant devices at the paper's φ = 0.6, ranked.
    pub dominants: Vec<DominantDevice>,
    /// The best weekly aggregation granularity (Definition 3) and its mean
    /// window correlation.
    pub best_weekly: Option<(Granularity, f64)>,
    /// Whether the gateway is strongly stationary at the best granularity.
    pub strongly_stationary: bool,
    /// Recommended 2-hour maintenance window, when computable.
    pub maintenance: Option<MaintenanceWindow>,
}

impl GatewayProfile {
    /// Runs the full analysis pipeline over one gateway's device series.
    ///
    /// `device_series` holds each device's overall (in + out) per-minute
    /// traffic, all aligned; `weeks` bounds the analysis horizon. Returns
    /// `None` when the gateway has no devices or no observations.
    pub fn analyze(device_series: &[TimeSeries], weeks: u32) -> Option<GatewayProfile> {
        let total = TimeSeries::sum_all(device_series.iter())?;
        if total.observed_count() == 0 {
            return None;
        }

        // Background removal per device, then the active total.
        let active_per_device: Vec<TimeSeries> = device_series
            .iter()
            .map(|d| {
                let tau = estimate_tau(d).unwrap_or(f64::INFINITY);
                remove_background(d, tau)
            })
            .collect();
        let active = TimeSeries::sum_all(active_per_device.iter())?;

        // Definition 3 sweep over the paper's weekly candidates — one call
        // shares the active series' prefix-sum pyramid across candidates
        // and yields every cell's stationarity verdict alongside its score.
        let candidates: Vec<(Granularity, u32)> = Granularity::weekly_candidates()
            .iter()
            .filter(|g| g.as_minutes() >= 60)
            .map(|&g| (g, 0))
            .collect();
        let sweep = weekly_sweep(
            std::slice::from_ref(&active),
            weeks,
            &candidates,
            &SweepConfig { threads: Some(1) },
            None,
        );
        let cells = &sweep.cells[0];
        let scores: Vec<_> = cells.iter().filter_map(|c| c.score).collect();
        let best_weekly = best_score(&scores).map(|s| (s.granularity, s.mean_correlation));

        let strongly_stationary = best_weekly
            .map(|(g, _)| {
                cells
                    .iter()
                    .find(|c| c.score.is_some_and(|s| s.granularity == g))
                    .and_then(|c| c.stationarity)
                    .is_some_and(|c| c.is_stationary())
            })
            .unwrap_or(false);

        let dominants = dominant_devices(&total, device_series, DOMINANCE_PHI);

        let maintenance =
            WeeklyProfile::from_active_series(&active, 60).and_then(|p| p.recommend(120));

        let total_bytes = total.total();
        Some(GatewayProfile {
            weeks,
            total_bytes,
            active_share: if total_bytes > 0.0 {
                active.total() / total_bytes
            } else {
                0.0
            },
            coverage: total.coverage(),
            dominants,
            best_weekly,
            strongly_stationary,
            maintenance,
        })
    }

    /// A multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "traffic: {:.2} GB over {} weeks ({:.0}% coverage), {:.0}% active\n",
            self.total_bytes / 1e9,
            self.weeks,
            self.coverage * 100.0,
            self.active_share * 100.0
        ));
        match &self.best_weekly {
            Some((g, c)) => out.push_str(&format!(
                "best weekly aggregation: {g} (mean window correlation {c:.2}); strongly stationary: {}\n",
                self.strongly_stationary
            )),
            None => out.push_str("not enough weekly data for an aggregation sweep\n"),
        }
        if self.dominants.is_empty() {
            out.push_str("no dominant device\n");
        } else {
            for d in &self.dominants {
                out.push_str(&format!(
                    "dominant #{}: device {} (cor {:.2})\n",
                    d.rank + 1,
                    d.device,
                    d.similarity
                ));
            }
        }
        match &self.maintenance {
            Some(w) => out.push_str(&format!(
                "recommended update window: {} (expected {:.0} bytes)\n",
                w.label(),
                w.expected_bytes
            )),
            None => out.push_str("no maintenance window computable\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_timeseries::{Minute, MINUTES_PER_WEEK};

    /// Two devices over two weeks: a dominant evening streamer and a quiet
    /// hum.
    fn synthetic_devices() -> Vec<TimeSeries> {
        let minutes = 2 * MINUTES_PER_WEEK as usize;
        let streamer: Vec<f64> = (0..minutes)
            .map(|m| {
                let hour = Minute(m as u32).hour();
                if (19..22).contains(&hour) {
                    2e6 + ((m * 13) % 997) as f64
                } else {
                    100.0 + ((m * 7) % 31) as f64
                }
            })
            .collect();
        let hum: Vec<f64> = (0..minutes)
            .map(|m| 400.0 + ((m * 11) % 17) as f64)
            .collect();
        vec![
            TimeSeries::per_minute(streamer),
            TimeSeries::per_minute(hum),
        ]
    }

    #[test]
    fn full_profile_of_synthetic_gateway() {
        let devices = synthetic_devices();
        let profile = GatewayProfile::analyze(&devices, 2).unwrap();
        assert!(profile.total_bytes > 0.0);
        assert!(profile.coverage > 0.99);
        assert!(profile.active_share > 0.5, "evening bursts dominate volume");
        assert_eq!(profile.dominants.first().map(|d| d.device), Some(0));
        let (_, c) = profile.best_weekly.expect("weekly sweep possible");
        assert!(c > 0.8, "perfectly repeating weeks correlate strongly");
        // The evening-free night must host the update window.
        let w = profile.maintenance.expect("window computable");
        assert!(w.start_minute / 60 >= 22 || w.start_minute / 60 + 2 <= 19);
    }

    #[test]
    fn render_mentions_the_key_facts() {
        let devices = synthetic_devices();
        let profile = GatewayProfile::analyze(&devices, 2).unwrap();
        let text = profile.render();
        assert!(text.contains("best weekly aggregation"));
        assert!(text.contains("dominant #1"));
        assert!(text.contains("recommended update window"));
    }

    #[test]
    fn empty_inputs_are_none() {
        assert!(GatewayProfile::analyze(&[], 2).is_none());
        let missing = vec![TimeSeries::per_minute(vec![f64::NAN; 100])];
        assert!(GatewayProfile::analyze(&missing, 2).is_none());
    }
}
