//! Batch pairwise-correlation engine.
//!
//! Every framework primitive — motif discovery (Definition 5), clustering
//! under `1 − cor` (Figure 3), strong stationarity (Definition 2) and
//! granularity scoring (Definition 3) — evaluates the similarity measure
//! over all pairs of a series collection. This module computes that
//! quadratic sweep from per-series [`CorProfile`]s, which hoist the
//! per-series work (finite-mask compaction, moments, mid-ranks, sort
//! permutations, tie statistics) out of the pair loop, and fills the upper
//! triangle in parallel with work-stealing over rows.
//!
//! Results are **bit-identical** to calling
//! [`correlation_similarity`](crate::similarity::correlation_similarity)
//! per pair: the profiled coefficient functions reproduce the from-scratch
//! accumulation orders exactly, and pairs whose finite masks differ fall
//! back to pairwise deletion internally (see `wtts_stats::corprofile`).

use crate::obs::PipelineObs;
use crate::similarity::CorSimilarity;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wtts_stats::{cor_tests_profiled, CorProfile, CorScratch, ALPHA};

/// Configuration for [`cor_matrix`].
#[derive(Debug, Clone)]
pub struct CorMatrixConfig {
    /// Significance level of Definition 1 (the paper uses α = 0.05).
    pub alpha: f64,
    /// Worker threads; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for CorMatrixConfig {
    fn default() -> CorMatrixConfig {
        CorMatrixConfig {
            alpha: ALPHA,
            threads: None,
        }
    }
}

/// The upper triangle of a symmetric pairwise-similarity matrix, stored
/// condensed (row-major, diagonal implicit) in `n(n−1)/2` floats.
///
/// `f32` keeps fleet-scale matrices compact, at a price at decision
/// thresholds: rounding `f64 → f32` can carry a similarity just *below*
/// φ = 0.8 (or ¾φ = 0.6) up across the threshold, flipping Definition 4/5
/// membership versus an exact evaluation. Consumers that decide membership
/// by `≥ threshold` therefore re-verify comparisons landing within
/// [`crate::motif::F32_REVERIFY_BAND`] of the threshold in `f64` (see
/// [`crate::motif::discover_motifs`]); the matrix itself stays a compact
/// pre-filter. The implicit diagonal reads as `1.0` (a series evolves
/// identically to itself).
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f32>,
}

impl CondensedMatrix {
    /// Number of series the matrix covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The condensed upper-triangle storage, row-major: row `i` holds
    /// `(i, i+1) .. (i, n-1)`.
    pub fn values(&self) -> &[f32] {
        &self.data
    }

    /// Flat index of the pair `(i, j)` with `i < j`.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// The similarity of series `i` and `j`, in either order; `1.0` on the
    /// diagonal.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.n && j < self.n, "pair index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }
}

/// Definition 1 over two profiles: the maximum statistically significant
/// coefficient at level `alpha`, `0` when none is significant.
///
/// Bit-identical to
/// [`correlation_similarity_at`](crate::similarity::correlation_similarity_at)
/// on the profiles' source series. `scratch` carries the reusable
/// per-pair buffers; keep one per thread.
pub fn correlation_similarity_profiled(
    a: &CorProfile,
    b: &CorProfile,
    scratch: &mut CorScratch,
    alpha: f64,
) -> CorSimilarity {
    let (p, s, k) = cor_tests_profiled(a, b, scratch);
    let mut value = 0.0;
    let mut best = None;
    for test in [&p, &s, &k] {
        if test.significant(alpha) && (best.is_none() || test.value > value) {
            value = test.value;
            best = Some(test.coefficient);
        }
    }
    CorSimilarity {
        value,
        best,
        pearson: p,
        spearman: s,
        kendall: k,
    }
}

/// `cor(X, Y)` of Definition 1 over two profiles at the paper's α = 0.05.
pub fn cor_profiled(a: &CorProfile, b: &CorProfile, scratch: &mut CorScratch) -> f64 {
    correlation_similarity_profiled(a, b, scratch, ALPHA).value
}

/// Computes the full pairwise similarity matrix of `profiles`.
///
/// Rows of the condensed upper triangle are handed out to worker threads
/// through a work-stealing counter (early rows are the longest, so
/// stealing balances the triangle's skew). Each worker owns one
/// [`CorScratch`], amortizing the Kendall buffers across its rows.
pub fn cor_matrix(profiles: &[CorProfile], config: &CorMatrixConfig) -> CondensedMatrix {
    cor_matrix_observed(profiles, config, None)
}

/// [`cor_matrix`] with optional observability: when `obs` is `Some`, every
/// row fill opens a span on [`PipelineObs::row_fill`] (one per row, across
/// all worker threads). With `None` this is exactly `cor_matrix` — no
/// atomics touched, no clocks read, bit-identical output.
pub fn cor_matrix_observed(
    profiles: &[CorProfile],
    config: &CorMatrixConfig,
    obs: Option<&PipelineObs>,
) -> CondensedMatrix {
    let n = profiles.len();
    let total = n * n.saturating_sub(1) / 2;
    let mut data = vec![0.0f32; total];
    let threads = config
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1);

    if n < 2 {
        return CondensedMatrix { n, data };
    }

    if threads == 1 {
        let mut scratch = CorScratch::new();
        let mut rest = data.as_mut_slice();
        for i in 0..n - 1 {
            let (row, tail) = rest.split_at_mut(n - 1 - i);
            let _span = obs.map(|o| o.row_fill.enter());
            fill_row(profiles, i, row, &mut scratch, config.alpha);
            rest = tail;
        }
        return CondensedMatrix { n, data };
    }

    // Carve the condensed storage into per-row slices so workers write
    // without aliasing; a shared counter hands rows out (the same pattern
    // the bench fleet generator uses for gateways).
    let mut rows: Vec<Option<&mut [f32]>> = Vec::with_capacity(n - 1);
    let mut rest = data.as_mut_slice();
    for i in 0..n - 1 {
        let (row, tail) = rest.split_at_mut(n - 1 - i);
        rows.push(Some(row));
        rest = tail;
    }
    let next = AtomicUsize::new(0);
    let rows = Mutex::new(rows);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n - 1) {
            scope.spawn(|| {
                let mut scratch = CorScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n - 1 {
                        break;
                    }
                    let row = {
                        let mut guard = rows.lock().expect("no poisoned row lock");
                        guard[i].take().expect("each row is taken once")
                    };
                    let _span = obs.map(|o| o.row_fill.enter());
                    fill_row(profiles, i, row, &mut scratch, config.alpha);
                }
            });
        }
    });

    CondensedMatrix { n, data }
}

/// Fills row `i` of the condensed triangle: similarities of `(i, j)` for
/// `j = i+1 .. n-1`.
fn fill_row(
    profiles: &[CorProfile],
    i: usize,
    row: &mut [f32],
    scratch: &mut CorScratch,
    alpha: f64,
) {
    for (offset, slot) in row.iter_mut().enumerate() {
        let j = i + 1 + offset;
        *slot = correlation_similarity_profiled(&profiles[i], &profiles[j], scratch, alpha).value
            as f32;
    }
}

/// Profiles a collection of series (a convenience for `cor_matrix` callers).
pub fn profile_series<S: AsRef<[f64]>>(series: &[S]) -> Vec<CorProfile> {
    profile_series_observed(series, None)
}

/// [`profile_series`] with optional observability: when `obs` is `Some`,
/// each profile construction opens a span on [`PipelineObs::profile_build`].
pub fn profile_series_observed<S: AsRef<[f64]>>(
    series: &[S],
    obs: Option<&PipelineObs>,
) -> Vec<CorProfile> {
    series
        .iter()
        .map(|s| {
            let _span = obs.map(|o| o.profile_build.enter());
            CorProfile::new(s.as_ref())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cor;

    fn series_fixture(n: usize, len: usize) -> Vec<Vec<f64>> {
        // Deterministic mix of correlated, shifted and noisy series with a
        // few NaN holes.
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| {
                        let base = ((t * (s % 5 + 1)) % 13) as f64;
                        let wobble = (((t * 7 + s * 3) % 11) as f64) * 0.1;
                        if (t + s) % 17 == 0 && s % 3 == 0 {
                            f64::NAN
                        } else {
                            base + wobble
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn condensed_index_roundtrip() {
        let n = 7;
        let m = CondensedMatrix {
            n,
            data: (0..n * (n - 1) / 2).map(|k| k as f32).collect(),
        };
        // Walk the triangle in storage order and confirm get() agrees.
        let mut k = 0;
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(m.get(i, j), k as f32);
                assert_eq!(m.get(j, i), k as f32);
                k += 1;
            }
        }
        assert_eq!(m.get(3, 3), 1.0);
    }

    #[test]
    fn matrix_matches_per_pair_cor() {
        let series = series_fixture(9, 40);
        let profiles = profile_series(&series);
        let m = cor_matrix(&profiles, &CorMatrixConfig::default());
        for i in 0..series.len() {
            for j in i + 1..series.len() {
                let reference = cor(&series[i], &series[j]) as f32;
                assert_eq!(
                    m.get(i, j).to_bits(),
                    reference.to_bits(),
                    "pair ({i}, {j}): {} vs {}",
                    m.get(i, j),
                    reference
                );
            }
        }
    }

    #[test]
    fn thread_counts_agree() {
        let series = series_fixture(8, 30);
        let profiles = profile_series(&series);
        let single = cor_matrix(
            &profiles,
            &CorMatrixConfig {
                threads: Some(1),
                ..CorMatrixConfig::default()
            },
        );
        for threads in [2, 4, 16] {
            let multi = cor_matrix(
                &profiles,
                &CorMatrixConfig {
                    threads: Some(threads),
                    ..CorMatrixConfig::default()
                },
            );
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn tiny_collections() {
        assert_eq!(cor_matrix(&[], &CorMatrixConfig::default()).n(), 0);
        let one = profile_series(&[vec![1.0, 2.0, 3.0]]);
        let m = cor_matrix(&one, &CorMatrixConfig::default());
        assert_eq!(m.n(), 1);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn profiled_similarity_matches_plain() {
        let series = series_fixture(4, 50);
        let profiles = profile_series(&series);
        let mut scratch = CorScratch::new();
        for i in 0..series.len() {
            for j in 0..series.len() {
                if i == j {
                    continue;
                }
                let plain = crate::similarity::correlation_similarity(&series[i], &series[j]);
                let fast = correlation_similarity_profiled(
                    &profiles[i],
                    &profiles[j],
                    &mut scratch,
                    ALPHA,
                );
                assert_eq!(plain.value.to_bits(), fast.value.to_bits());
                assert_eq!(plain.best, fast.best);
                assert_eq!(plain.pearson, fast.pearson);
                assert_eq!(plain.spearman, fast.spearman);
                assert_eq!(plain.kendall, fast.kendall);
            }
        }
    }
}
