//! Batch pairwise-correlation engine.
//!
//! Every framework primitive — motif discovery (Definition 5), clustering
//! under `1 − cor` (Figure 3), strong stationarity (Definition 2) and
//! granularity scoring (Definition 3) — evaluates the similarity measure
//! over all pairs of a series collection. This module computes that
//! quadratic sweep from per-series [`CorProfile`]s, which hoist the
//! per-series work (finite-mask compaction, moments, mid-ranks, sort
//! permutations, tie statistics) out of the pair loop, and fills the upper
//! triangle in parallel with work-stealing over rows.
//!
//! Results are **bit-identical** to calling
//! [`correlation_similarity`](crate::similarity::correlation_similarity)
//! per pair: the profiled coefficient functions reproduce the from-scratch
//! accumulation orders exactly, and pairs whose finite masks differ fall
//! back to pairwise deletion internally (see `wtts_stats::corprofile`).

use crate::obs::PipelineObs;
use crate::similarity::CorSimilarity;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wtts_stats::sketch::{prune_pair, CorSketch, PruneTier, SketchConfig};
use wtts_stats::{cor_tests_profiled, CorProfile, CorScratch, ALPHA};

/// Configuration for [`cor_matrix`].
#[derive(Debug, Clone)]
pub struct CorMatrixConfig {
    /// Significance level of Definition 1 (the paper uses α = 0.05).
    pub alpha: f64,
    /// Worker threads; `None` uses the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for CorMatrixConfig {
    fn default() -> CorMatrixConfig {
        CorMatrixConfig {
            alpha: ALPHA,
            threads: None,
        }
    }
}

/// The upper triangle of a symmetric pairwise-similarity matrix, stored
/// condensed (row-major, diagonal implicit) in `n(n−1)/2` floats.
///
/// `f32` keeps fleet-scale matrices compact, at a price at decision
/// thresholds: rounding `f64 → f32` can carry a similarity just *below*
/// φ = 0.8 (or ¾φ = 0.6) up across the threshold, flipping Definition 4/5
/// membership versus an exact evaluation. Consumers that decide membership
/// by `≥ threshold` therefore re-verify comparisons landing within
/// [`crate::motif::F32_REVERIFY_BAND`] of the threshold in `f64` (see
/// [`crate::motif::discover_motifs`]); the matrix itself stays a compact
/// pre-filter. The implicit diagonal reads as `1.0` (a series evolves
/// identically to itself).
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f32>,
}

impl CondensedMatrix {
    /// Number of series the matrix covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The condensed upper-triangle storage, row-major: row `i` holds
    /// `(i, i+1) .. (i, n-1)`.
    pub fn values(&self) -> &[f32] {
        &self.data
    }

    /// Flat index of the pair `(i, j)` with `i < j`.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// The similarity of series `i` and `j`, in either order; `1.0` on the
    /// diagonal.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.n && j < self.n, "pair index out of bounds");
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Equal => 1.0,
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }
}

/// Definition 1 over two profiles: the maximum statistically significant
/// coefficient at level `alpha`, `0` when none is significant.
///
/// Bit-identical to
/// [`correlation_similarity_at`](crate::similarity::correlation_similarity_at)
/// on the profiles' source series. `scratch` carries the reusable
/// per-pair buffers; keep one per thread.
pub fn correlation_similarity_profiled(
    a: &CorProfile,
    b: &CorProfile,
    scratch: &mut CorScratch,
    alpha: f64,
) -> CorSimilarity {
    let (p, s, k) = cor_tests_profiled(a, b, scratch);
    let mut value = 0.0;
    let mut best = None;
    for test in [&p, &s, &k] {
        if test.significant(alpha) && (best.is_none() || test.value > value) {
            value = test.value;
            best = Some(test.coefficient);
        }
    }
    CorSimilarity {
        value,
        best,
        pearson: p,
        spearman: s,
        kendall: k,
    }
}

/// `cor(X, Y)` of Definition 1 over two profiles at the paper's α = 0.05.
pub fn cor_profiled(a: &CorProfile, b: &CorProfile, scratch: &mut CorScratch) -> f64 {
    correlation_similarity_profiled(a, b, scratch, ALPHA).value
}

/// Computes the full pairwise similarity matrix of `profiles`.
///
/// Rows of the condensed upper triangle are handed out to worker threads
/// through a work-stealing counter (early rows are the longest, so
/// stealing balances the triangle's skew). Each worker owns one
/// [`CorScratch`], amortizing the Kendall buffers across its rows. The
/// per-pair fill bottoms out in the stats crate's kernel layer
/// (`wtts_stats::kernels`): fused Pearson+Spearman cross-moment folds,
/// branch-light rank gathers and the merge-based Kendall inversion count —
/// all bit-identical to the from-scratch coefficients, benchmarked
/// per-kernel in `BENCH_kernels.json`.
pub fn cor_matrix(profiles: &[CorProfile], config: &CorMatrixConfig) -> CondensedMatrix {
    cor_matrix_observed(profiles, config, None)
}

/// [`cor_matrix`] with optional observability: when `obs` is `Some`, every
/// row fill opens a span on [`PipelineObs::row_fill`] (one per row, across
/// all worker threads). With `None` this is exactly `cor_matrix` — no
/// atomics touched, no clocks read, bit-identical output.
pub fn cor_matrix_observed(
    profiles: &[CorProfile],
    config: &CorMatrixConfig,
    obs: Option<&PipelineObs>,
) -> CondensedMatrix {
    let n = profiles.len();
    let total = n * n.saturating_sub(1) / 2;
    let mut data = vec![0.0f32; total];
    let threads = config
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1);

    if n < 2 {
        return CondensedMatrix { n, data };
    }

    if threads == 1 {
        let mut scratch = CorScratch::new();
        let mut rest = data.as_mut_slice();
        for i in 0..n - 1 {
            let (row, tail) = rest.split_at_mut(n - 1 - i);
            let _span = obs.map(|o| o.row_fill.enter());
            fill_row(profiles, i, row, &mut scratch, config.alpha);
            rest = tail;
        }
        return CondensedMatrix { n, data };
    }

    // Carve the condensed storage into per-row slices so workers write
    // without aliasing; a shared counter hands rows out (the same pattern
    // the bench fleet generator uses for gateways).
    let mut rows: Vec<Option<&mut [f32]>> = Vec::with_capacity(n - 1);
    let mut rest = data.as_mut_slice();
    for i in 0..n - 1 {
        let (row, tail) = rest.split_at_mut(n - 1 - i);
        rows.push(Some(row));
        rest = tail;
    }
    let next = AtomicUsize::new(0);
    let rows = Mutex::new(rows);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n - 1) {
            scope.spawn(|| {
                let mut scratch = CorScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n - 1 {
                        break;
                    }
                    let row = {
                        let mut guard = rows.lock().expect("no poisoned row lock");
                        guard[i].take().expect("each row is taken once")
                    };
                    let _span = obs.map(|o| o.row_fill.enter());
                    fill_row(profiles, i, row, &mut scratch, config.alpha);
                }
            });
        }
    });

    CondensedMatrix { n, data }
}

/// Fills row `i` of the condensed triangle: similarities of `(i, j)` for
/// `j = i+1 .. n-1`.
fn fill_row(
    profiles: &[CorProfile],
    i: usize,
    row: &mut [f32],
    scratch: &mut CorScratch,
    alpha: f64,
) {
    for (offset, slot) in row.iter_mut().enumerate() {
        let j = i + 1 + offset;
        *slot = correlation_similarity_profiled(&profiles[i], &profiles[j], scratch, alpha).value
            as f32;
    }
}

/// Profiles a collection of series (a convenience for `cor_matrix` callers).
pub fn profile_series<S: AsRef<[f64]>>(series: &[S]) -> Vec<CorProfile> {
    profile_series_observed(series, None)
}

/// [`profile_series`] with optional observability: when `obs` is `Some`,
/// each profile construction opens a span on [`PipelineObs::profile_build`].
pub fn profile_series_observed<S: AsRef<[f64]>>(
    series: &[S],
    obs: Option<&PipelineObs>,
) -> Vec<CorProfile> {
    series
        .iter()
        .map(|s| profile_one(s.as_ref(), obs))
        .collect()
}

/// Profiles a single series under a [`PipelineObs::profile_build`] span —
/// the per-item building block of [`profile_series_observed`], shared with
/// the lag-search preparation phase ([`crate::lagsearch`]).
pub(crate) fn profile_one(series: &[f64], obs: Option<&PipelineObs>) -> CorProfile {
    let _span = obs.map(|o| o.profile_build.enter());
    CorProfile::new(series)
}

/// Configuration for the sketch-pruned matrix build: the similarity
/// threshold pruning targets, the sketch resolution, and the exact
/// engine's own settings for survivors.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// The similarity threshold φ: pairs provably below it are pruned.
    /// Pruning is sound only for `threshold > 0` (Definition 1 maps
    /// insignificant pairs to 0); at `threshold ≤ 0` every pair is
    /// evaluated exactly.
    pub threshold: f64,
    /// Sketch resolution (segments and SAX alphabet).
    pub sketch: SketchConfig,
    /// Exact-path settings (significance level, worker threads).
    pub matrix: CorMatrixConfig,
}

impl PruneConfig {
    /// Default sketches and exact-path settings at threshold `phi`.
    pub fn at_threshold(phi: f64) -> PruneConfig {
        PruneConfig {
            threshold: phi,
            sketch: SketchConfig::default(),
            matrix: CorMatrixConfig::default(),
        }
    }
}

/// Per-tier accounting of one pruned matrix build. The conservation law
/// `pairs_pruned() + pairs_evaluated == pairs_total` holds by
/// construction and is what the CI smoke asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// All unordered pairs considered (`n(n−1)/2`).
    pub pairs_total: u64,
    /// Pairs dismissed because a side degenerates every coefficient.
    pub pruned_degenerate: u64,
    /// Pairs dismissed by the symbolized (SAX MINDIST) bounds.
    pub pruned_sax: u64,
    /// Pairs dismissed by the segment-mean (moment) bounds.
    pub pruned_moment: u64,
    /// Pairs evaluated exactly (stored in the sparse matrix).
    pub pairs_evaluated: u64,
    /// Evaluated pairs that were ineligible for pruning because their
    /// finite masks differ (a subset of `pairs_evaluated`).
    pub mask_fallthrough: u64,
}

impl PruneStats {
    /// Pairs dismissed across all tiers.
    pub fn pairs_pruned(&self) -> u64 {
        self.pruned_degenerate + self.pruned_sax + self.pruned_moment
    }

    /// Fraction of pairs dismissed without exact work (0 for `n < 2`).
    pub fn prune_rate(&self) -> f64 {
        if self.pairs_total == 0 {
            0.0
        } else {
            self.pairs_pruned() as f64 / self.pairs_total as f64
        }
    }

    /// The conservation law every build must satisfy.
    pub fn conserved(&self) -> bool {
        self.pairs_pruned() + self.pairs_evaluated == self.pairs_total
    }

    fn absorb(&mut self, other: &PruneStats) {
        self.pairs_total += other.pairs_total;
        self.pruned_degenerate += other.pruned_degenerate;
        self.pruned_sax += other.pruned_sax;
        self.pruned_moment += other.pruned_moment;
        self.pairs_evaluated += other.pairs_evaluated;
        self.mask_fallthrough += other.mask_fallthrough;
    }
}

/// The sparse upper triangle a pruned build produces: only pairs that
/// survived pruning carry a value (bit-identical to the dense
/// [`CondensedMatrix`] entry); pruned pairs are absent, which certifies
/// their similarity is strictly below the build threshold.
///
/// Storage is CSR-like: `row_start[i] .. row_start[i+1]` indexes the
/// columns (`j > i`, ascending) and values of row `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCorMatrix {
    n: usize,
    threshold: f64,
    row_start: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

impl SparseCorMatrix {
    /// Number of series the matrix covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The threshold the build pruned against: `get` returning `None`
    /// certifies the pair's exact similarity is below this.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of stored (exactly evaluated) pairs.
    pub fn evaluated_pairs(&self) -> usize {
        self.cols.len()
    }

    /// The similarity of series `i` and `j`, in either order: `Some` with
    /// the dense-identical value when the pair was evaluated, `1.0` on the
    /// diagonal, `None` when the pair was pruned (provably `< threshold`).
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f32> {
        assert!(i < self.n && j < self.n, "pair index out of bounds");
        let (i, j) = match i.cmp(&j) {
            std::cmp::Ordering::Less => (i, j),
            std::cmp::Ordering::Equal => return Some(1.0),
            std::cmp::Ordering::Greater => (j, i),
        };
        let row = &self.cols[self.row_start[i]..self.row_start[i + 1]];
        row.binary_search(&(j as u32))
            .ok()
            .map(|k| self.vals[self.row_start[i] + k])
    }

    /// All stored entries `(i, j, value)` with `i < j`, in lexicographic
    /// `(i, j)` order — the same order a dense candidate scan visits
    /// pairs, which is what keeps pruned motif discovery bit-identical.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.n).flat_map(move |i| {
            (self.row_start[i]..self.row_start[i + 1])
                .map(move |k| (i, self.cols[k] as usize, self.vals[k]))
        })
    }
}

/// Builds the pruning sketch of every profile (a convenience for
/// [`cor_matrix_pruned`] callers).
pub fn sketch_series(profiles: &[CorProfile], config: &SketchConfig) -> Vec<CorSketch> {
    sketch_series_observed(profiles, config, None)
}

/// [`sketch_series`] with optional observability: when `obs` is `Some`,
/// each sketch construction opens a span on [`PipelineObs::sketch_build`].
pub fn sketch_series_observed(
    profiles: &[CorProfile],
    config: &SketchConfig,
    obs: Option<&PipelineObs>,
) -> Vec<CorSketch> {
    profiles
        .iter()
        .map(|p| sketch_one(p, config, obs))
        .collect()
}

/// Sketches a single profile under a [`PipelineObs::sketch_build`] span —
/// the per-item building block of [`sketch_series_observed`], shared with
/// the lag-search preparation phase ([`crate::lagsearch`]).
pub(crate) fn sketch_one(
    profile: &CorProfile,
    config: &SketchConfig,
    obs: Option<&PipelineObs>,
) -> CorSketch {
    let _span = obs.map(|o| o.sketch_build.enter());
    CorSketch::from_profile(profile, config)
}

/// Sketch-pruned pairwise similarity: evaluates only the pairs whose
/// coefficient upper bounds do not already prove `cor < threshold`.
///
/// Zero false dismissals: every pair whose exact similarity is at or
/// above `config.threshold` is present in the result with the value the
/// dense [`cor_matrix`] would store, bit for bit (survivors run through
/// the identical exact path). Pairs whose finite masks differ are never
/// pruned — the sketch bounds assume a shared mask — and fall through to
/// exact evaluation, counted in [`PruneStats::mask_fallthrough`].
pub fn cor_matrix_pruned(
    profiles: &[CorProfile],
    sketches: &[CorSketch],
    config: &PruneConfig,
) -> (SparseCorMatrix, PruneStats) {
    cor_matrix_pruned_observed(profiles, sketches, config, None)
}

/// [`cor_matrix_pruned`] with optional observability: row fills open
/// spans on [`PipelineObs::row_fill`], and the per-tier prune counters
/// ([`PipelineObs::prune_pairs_total`] and friends) accumulate the
/// returned [`PruneStats`].
pub fn cor_matrix_pruned_observed(
    profiles: &[CorProfile],
    sketches: &[CorSketch],
    config: &PruneConfig,
    obs: Option<&PipelineObs>,
) -> (SparseCorMatrix, PruneStats) {
    assert_eq!(
        profiles.len(),
        sketches.len(),
        "one sketch per profile required"
    );
    let n = profiles.len();
    let threads = config
        .matrix
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1);

    let mut stats = PruneStats::default();
    let mut row_cols: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut row_vals: Vec<Vec<f32>> = Vec::with_capacity(n);

    if n < 2 {
        row_cols.resize_with(n, Vec::new);
        row_vals.resize_with(n, Vec::new);
    } else if threads == 1 {
        let mut scratch = CorScratch::new();
        for i in 0..n {
            let _span = (i + 1 < n).then(|| obs.map(|o| o.row_fill.enter()));
            let (cols, vals) =
                fill_row_pruned(profiles, sketches, i, config, &mut scratch, &mut stats);
            row_cols.push(cols);
            row_vals.push(vals);
        }
    } else {
        let mut slots: Vec<Option<(Vec<u32>, Vec<f32>)>> = Vec::new();
        slots.resize_with(n, || None);
        let slots = Mutex::new(slots);
        let total = Mutex::new(PruneStats::default());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n - 1) {
                scope.spawn(|| {
                    let mut scratch = CorScratch::new();
                    let mut local = PruneStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n - 1 {
                            break;
                        }
                        let _span = obs.map(|o| o.row_fill.enter());
                        let row = fill_row_pruned(
                            profiles,
                            sketches,
                            i,
                            config,
                            &mut scratch,
                            &mut local,
                        );
                        slots.lock().expect("no poisoned slot lock")[i] = Some(row);
                    }
                    total.lock().expect("no poisoned stats lock").absorb(&local);
                });
            }
        });
        stats = total.into_inner().expect("no poisoned stats lock");
        for slot in slots.into_inner().expect("no poisoned slot lock") {
            let (cols, vals) = slot.unwrap_or_default();
            row_cols.push(cols);
            row_vals.push(vals);
        }
    }

    let mut row_start = Vec::with_capacity(n + 1);
    row_start.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for (rc, rv) in row_cols.iter().zip(&row_vals) {
        cols.extend_from_slice(rc);
        vals.extend_from_slice(rv);
        row_start.push(cols.len());
    }

    if let Some(o) = obs {
        o.prune_pairs_total.add(stats.pairs_total);
        o.pairs_pruned_degenerate.add(stats.pruned_degenerate);
        o.pairs_pruned_sax.add(stats.pruned_sax);
        o.pairs_pruned_moment.add(stats.pruned_moment);
        o.prune_pairs_evaluated.add(stats.pairs_evaluated);
        o.prune_mask_fallthrough.add(stats.mask_fallthrough);
    }
    debug_assert!(stats.conserved());
    (
        SparseCorMatrix {
            n,
            threshold: config.threshold,
            row_start,
            cols,
            vals,
        },
        stats,
    )
}

/// Fills one pruned row: prune-or-evaluate every pair `(i, j)`, `j > i`.
fn fill_row_pruned(
    profiles: &[CorProfile],
    sketches: &[CorSketch],
    i: usize,
    config: &PruneConfig,
    scratch: &mut CorScratch,
    stats: &mut PruneStats,
) -> (Vec<u32>, Vec<f32>) {
    let n = profiles.len();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for j in i + 1..n {
        stats.pairs_total += 1;
        let same_mask = profiles[i].same_mask(&profiles[j]);
        let tier = if same_mask {
            prune_pair(&sketches[i], &sketches[j], config.threshold)
        } else {
            None
        };
        match tier {
            Some(PruneTier::Degenerate) => stats.pruned_degenerate += 1,
            Some(PruneTier::Sax) => stats.pruned_sax += 1,
            Some(PruneTier::Moment) => stats.pruned_moment += 1,
            None => {
                stats.pairs_evaluated += 1;
                if !same_mask {
                    stats.mask_fallthrough += 1;
                }
                let v = correlation_similarity_profiled(
                    &profiles[i],
                    &profiles[j],
                    scratch,
                    config.matrix.alpha,
                )
                .value as f32;
                cols.push(j as u32);
                vals.push(v);
            }
        }
    }
    (cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::cor;

    fn series_fixture(n: usize, len: usize) -> Vec<Vec<f64>> {
        // Deterministic mix of correlated, shifted and noisy series with a
        // few NaN holes.
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| {
                        let base = ((t * (s % 5 + 1)) % 13) as f64;
                        let wobble = (((t * 7 + s * 3) % 11) as f64) * 0.1;
                        if (t + s) % 17 == 0 && s % 3 == 0 {
                            f64::NAN
                        } else {
                            base + wobble
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn condensed_index_roundtrip() {
        let n = 7;
        let m = CondensedMatrix {
            n,
            data: (0..n * (n - 1) / 2).map(|k| k as f32).collect(),
        };
        // Walk the triangle in storage order and confirm get() agrees.
        let mut k = 0;
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(m.get(i, j), k as f32);
                assert_eq!(m.get(j, i), k as f32);
                k += 1;
            }
        }
        assert_eq!(m.get(3, 3), 1.0);
    }

    #[test]
    fn matrix_matches_per_pair_cor() {
        let series = series_fixture(9, 40);
        let profiles = profile_series(&series);
        let m = cor_matrix(&profiles, &CorMatrixConfig::default());
        for i in 0..series.len() {
            for j in i + 1..series.len() {
                let reference = cor(&series[i], &series[j]) as f32;
                assert_eq!(
                    m.get(i, j).to_bits(),
                    reference.to_bits(),
                    "pair ({i}, {j}): {} vs {}",
                    m.get(i, j),
                    reference
                );
            }
        }
    }

    #[test]
    fn thread_counts_agree() {
        let series = series_fixture(8, 30);
        let profiles = profile_series(&series);
        let single = cor_matrix(
            &profiles,
            &CorMatrixConfig {
                threads: Some(1),
                ..CorMatrixConfig::default()
            },
        );
        for threads in [2, 4, 16] {
            let multi = cor_matrix(
                &profiles,
                &CorMatrixConfig {
                    threads: Some(threads),
                    ..CorMatrixConfig::default()
                },
            );
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn tiny_collections() {
        assert_eq!(cor_matrix(&[], &CorMatrixConfig::default()).n(), 0);
        let one = profile_series(&[vec![1.0, 2.0, 3.0]]);
        let m = cor_matrix(&one, &CorMatrixConfig::default());
        assert_eq!(m.n(), 1);
        assert_eq!(m.get(0, 0), 1.0);
    }

    /// Pruned-vs-dense agreement on a fixture: survivors bit-identical,
    /// pruned pairs truly below threshold, books conserved.
    fn assert_pruned_matches_dense(series: &[Vec<f64>], phi: f64, threads: Option<usize>) {
        let profiles = profile_series(series);
        let mut config = PruneConfig::at_threshold(phi);
        config.matrix.threads = threads;
        let sketches = sketch_series(&profiles, &config.sketch);
        let (sparse, stats) = cor_matrix_pruned(&profiles, &sketches, &config);
        let dense = cor_matrix(&profiles, &config.matrix);
        assert!(stats.conserved(), "{stats:?}");
        assert_eq!(stats.pairs_evaluated as usize, sparse.evaluated_pairs());
        for i in 0..series.len() {
            for j in i + 1..series.len() {
                let d = dense.get(i, j);
                match sparse.get(i, j) {
                    Some(v) => assert_eq!(v.to_bits(), d.to_bits(), "pair ({i},{j})"),
                    None => assert!(
                        (d as f64) < phi,
                        "pair ({i},{j}) pruned but dense = {d} ≥ {phi}"
                    ),
                }
            }
        }
    }

    #[test]
    fn pruned_matrix_matches_dense_on_fixture() {
        let series = series_fixture(12, 48);
        for phi in [0.3, 0.6, 0.9] {
            assert_pruned_matches_dense(&series, phi, Some(1));
        }
        assert_pruned_matches_dense(&series, 0.6, Some(4));
    }

    #[test]
    fn non_positive_threshold_evaluates_everything() {
        let series = series_fixture(6, 30);
        let profiles = profile_series(&series);
        let config = PruneConfig::at_threshold(0.0);
        let sketches = sketch_series(&profiles, &config.sketch);
        let (sparse, stats) = cor_matrix_pruned(&profiles, &sketches, &config);
        assert_eq!(stats.pairs_pruned(), 0);
        assert_eq!(stats.pairs_evaluated, stats.pairs_total);
        assert_eq!(sparse.evaluated_pairs() as u64, stats.pairs_total);
    }

    #[test]
    fn pruned_matrix_prunes_antiphase_pairs() {
        // Two strongly separated shape families with a continuous tilt so
        // values are tie-free: cross-family pairs must actually prune.
        let n = 56;
        let series: Vec<Vec<f64>> = (0..10)
            .map(|s| {
                let sign = if s % 2 == 0 { 1.0 } else { -1.0 };
                (0..n)
                    .map(|t| {
                        sign * (t as f64 * std::f64::consts::TAU / 8.0).sin() * 100.0
                            + (t as f64) * 1e-3
                            + (s as f64) * 1e-4 * (t as f64 % 7.0)
                    })
                    .collect()
            })
            .collect();
        let profiles = profile_series(&series);
        let config = PruneConfig::at_threshold(0.6);
        let sketches = sketch_series(&profiles, &config.sketch);
        let (_, stats) = cor_matrix_pruned(&profiles, &sketches, &config);
        assert!(
            stats.pairs_pruned() >= 25,
            "expected cross-family prunes, got {stats:?}"
        );
        assert_pruned_matches_dense(&series, 0.6, Some(1));
    }

    #[test]
    fn pruned_matrix_obs_counters_conserve() {
        let series = series_fixture(10, 40);
        let profiles = profile_series(&series);
        let config = PruneConfig::at_threshold(0.6);
        let obs = PipelineObs::new();
        let sketches = sketch_series_observed(&profiles, &config.sketch, Some(&obs));
        let (_, stats) = cor_matrix_pruned_observed(&profiles, &sketches, &config, Some(&obs));
        let snap = obs.snapshot();
        assert!(snap.quiescent());
        assert_eq!(snap.counter("prune_pairs_total"), stats.pairs_total);
        assert_eq!(
            snap.counter("pairs_pruned_degenerate")
                + snap.counter("pairs_pruned_sax")
                + snap.counter("pairs_pruned_moment")
                + snap.counter("prune_pairs_evaluated"),
            snap.counter("prune_pairs_total"),
        );
        let sketch_stage = snap
            .stages
            .iter()
            .find(|(name, _)| *name == "sketch_build")
            .map(|(_, s)| s.clone())
            .expect("sketch_build stage present");
        assert_eq!(sketch_stage.entered, series.len() as u64);
    }

    #[test]
    fn sparse_get_handles_diagonal_and_orientation() {
        let series = series_fixture(5, 30);
        let profiles = profile_series(&series);
        let config = PruneConfig::at_threshold(0.5);
        let sketches = sketch_series(&profiles, &config.sketch);
        let (sparse, _) = cor_matrix_pruned(&profiles, &sketches, &config);
        assert_eq!(sparse.get(2, 2), Some(1.0));
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(sparse.get(i, j), sparse.get(j, i));
            }
        }
        let collected: Vec<_> = sparse.entries().collect();
        assert_eq!(collected.len(), sparse.evaluated_pairs());
        assert!(collected
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    #[test]
    fn profiled_similarity_matches_plain() {
        let series = series_fixture(4, 50);
        let profiles = profile_series(&series);
        let mut scratch = CorScratch::new();
        for i in 0..series.len() {
            for j in 0..series.len() {
                if i == j {
                    continue;
                }
                let plain = crate::similarity::correlation_similarity(&series[i], &series[j]);
                let fast = correlation_similarity_profiled(
                    &profiles[i],
                    &profiles[j],
                    &mut scratch,
                    ALPHA,
                );
                assert_eq!(plain.value.to_bits(), fast.value.to_bits());
                assert_eq!(plain.best, fast.best);
                assert_eq!(plain.pearson, fast.pearson);
                assert_eq!(plain.spearman, fast.spearman);
                assert_eq!(plain.kendall, fast.kendall);
            }
        }
    }
}
