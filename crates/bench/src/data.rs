//! Shared data preparation for the experiments: eligibility filters and
//! active-traffic (background-removed) series.

use wtts_core::background::{estimate_tau, remove_background};
use wtts_gwsim::{Fleet, SimGateway};
use wtts_timeseries::{TimeSeries, MINUTES_PER_DAY, MINUTES_PER_WEEK};

/// Maps every gateway of the fleet through `f` in parallel (one OS thread
/// per core, chunked round-robin), preserving gateway-id order in the
/// output. Rendering a gateway costs ~100 ms, so fleet-wide experiments
/// gain nearly a core-count speedup.
pub fn fleet_map<R, F>(fleet: &Fleet, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(SimGateway) -> R + Sync,
{
    let n = fleet.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_ptr = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let id = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if id >= n {
                    break;
                }
                let result = f(fleet.gateway(id));
                let mut guard = slots_ptr.lock().expect("no poisoned slot lock");
                guard[id] = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Truncates a per-minute series to the first `weeks` weeks.
pub fn first_weeks(series: &TimeSeries, weeks: u32) -> TimeSeries {
    series.slice(
        wtts_timeseries::Minute::ZERO,
        (weeks * MINUTES_PER_WEEK) as usize,
    )
}

/// Whether the series has at least one observation in every one of the
/// first `weeks` weeks — the paper's filter for weekly analyses
/// ("all the user gateways that have at least one traffic observation every
/// week").
pub fn observed_every_week(series: &TimeSeries, weeks: u32) -> bool {
    let per_week = MINUTES_PER_WEEK as usize;
    (0..weeks as usize).all(|w| {
        let lo = w * per_week;
        series.values()[lo.min(series.len())..((w + 1) * per_week).min(series.len())]
            .iter()
            .any(|v| v.is_finite())
    })
}

/// Whether the series has at least one observation on every one of the
/// first `weeks * 7` days — the filter for daily analyses.
pub fn observed_every_day(series: &TimeSeries, weeks: u32) -> bool {
    let per_day = MINUTES_PER_DAY as usize;
    (0..(weeks * 7) as usize).all(|d| {
        let lo = d * per_day;
        series.values()[lo.min(series.len())..((d + 1) * per_day).min(series.len())]
            .iter()
            .any(|v| v.is_finite())
    })
}

/// The gateway's *active* overall traffic: per-device background removal
/// (Section 6.1) followed by summation.
///
/// Each device's in/out series gets its own boxplot-whisker threshold
/// (capped at 5 kB/min); values below are zeroed, then all devices sum into
/// the gateway series.
pub fn active_total(gateway: &SimGateway) -> TimeSeries {
    let cleaned: Vec<TimeSeries> = gateway
        .devices
        .iter()
        .map(|d| {
            let tau_in = estimate_tau(&d.incoming).unwrap_or(f64::INFINITY);
            let tau_out = estimate_tau(&d.outgoing).unwrap_or(f64::INFINITY);
            let inc = remove_background(&d.incoming, tau_in);
            let out = remove_background(&d.outgoing, tau_out);
            inc.add(&out)
        })
        .collect();
    TimeSeries::sum_all(cleaned.iter()).expect("gateway has devices")
}

/// Raw (background included) overall traffic of the gateway, truncated to
/// `weeks` weeks.
pub fn raw_total(gateway: &SimGateway, weeks: u32) -> TimeSeries {
    first_weeks(&gateway.aggregate_total(), weeks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::{Fleet, FleetConfig};
    use wtts_timeseries::Minute;

    #[test]
    fn weekly_observation_filter() {
        let week = MINUTES_PER_WEEK as usize;
        let mut v = vec![f64::NAN; 2 * week];
        v[10] = 1.0;
        v[week + 10] = 1.0;
        let s = TimeSeries::per_minute(v.clone());
        assert!(observed_every_week(&s, 2));
        // Remove the week-1 observation: filter fails.
        v[week + 10] = f64::NAN;
        let s = TimeSeries::per_minute(v);
        assert!(!observed_every_week(&s, 2));
    }

    #[test]
    fn daily_observation_filter() {
        let day = MINUTES_PER_DAY as usize;
        let mut v = vec![1.0; 14 * day];
        let s = TimeSeries::per_minute(v.clone());
        assert!(observed_every_day(&s, 2));
        for x in &mut v[3 * day..4 * day] {
            *x = f64::NAN;
        }
        let s = TimeSeries::per_minute(v);
        assert!(!observed_every_day(&s, 2));
    }

    #[test]
    fn first_weeks_truncates() {
        let s = TimeSeries::per_minute(vec![1.0; 2 * MINUTES_PER_WEEK as usize]);
        let t = first_weeks(&s, 1);
        assert_eq!(t.len(), MINUTES_PER_WEEK as usize);
        assert_eq!(t.start(), Minute::ZERO);
    }

    #[test]
    fn fleet_map_preserves_order_and_coverage() {
        let fleet = Fleet::new(FleetConfig::small());
        let ids = fleet_map(&fleet, |gw| gw.id);
        assert_eq!(ids, (0..fleet.len()).collect::<Vec<_>>());
        // Results match sequential computation.
        let seq: Vec<usize> = fleet.iter().map(|gw| gw.devices.len()).collect();
        let par = fleet_map(&fleet, |gw| gw.devices.len());
        assert_eq!(seq, par);
    }

    #[test]
    fn active_total_reduces_mass_keeps_peaks() {
        let fleet = Fleet::new(FleetConfig::small());
        let gw = fleet.gateway(0);
        let raw = gw.aggregate_total();
        let active = active_total(&gw);
        assert_eq!(raw.len(), active.len());
        assert!(active.total() < raw.total(), "background mass removed");
        // The largest active peak survives (it is way above any whisker).
        let raw_max = raw.max().unwrap();
        let active_max = active.max().unwrap();
        assert!(active_max > raw_max * 0.5, "peaks survive removal");
    }
}
