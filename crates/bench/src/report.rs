//! Plain-text tables and CSV output for experiment reports.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned text table that doubles as a CSV writer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|s| field(s))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|s| field(s)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table to stdout and, when `dir` is given, writes
    /// `<dir>/<slug>.csv`.
    pub fn emit(&self, dir: Option<&Path>) {
        println!("{}", self.render());
        if let Some(dir) = dir {
            let slug: String = self
                .title
                .to_lowercase()
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '-' })
                .collect::<String>()
                .split('-')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("-");
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::File::create(&path))
                .and_then(|mut f| f.write_all(self.to_csv().as_bytes()))
            {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

/// Formats a float with `digits` decimals, rendering missing values as "-".
pub fn fmt(v: f64, digits: usize) -> String {
    if v.is_finite() {
        format!("{v:.digits$}")
    } else {
        "-".to_string()
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    if v.is_finite() {
        format!("{:.1}%", v * 100.0)
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("Q", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("W", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn emit_writes_csv_files() {
        let dir = std::env::temp_dir().join("wtts-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("Fig X - demo table", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.emit(Some(&dir));
        let path = dir.join("fig-x-demo-table.csv");
        let text = std::fs::read_to_string(&path).expect("csv written");
        assert!(text.starts_with(
            "a,b
"
        ));
        assert!(text.contains("1,2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(f64::NAN, 2), "-");
        assert_eq!(pct(0.356), "35.6%");
        assert_eq!(pct(f64::INFINITY), "-");
    }
}
