//! Application-level experiments beyond the paper's figures:
//!
//! * `sec4-arima` — makes §4.2's qualitative claim ("ARIMA modeling …
//!   cannot yield useful results, as it is not able to predict the rare
//!   bursts") quantitative with out-of-sample AR forecasts.
//! * `app-maintenance` — the intro's headline use case: per-gateway
//!   firmware-update windows chosen from the weekly activity profile.

use crate::data::{active_total, first_weeks};
use crate::experiments::standard::most_observed_gateways;
use crate::report::{fmt, pct, Table};
use std::collections::HashMap;
use std::path::Path;
use wtts_core::anomaly::{AnomalyConfig, AnomalyDetector};
use wtts_core::maintenance::WeeklyProfile;
use wtts_gwsim::Fleet;
use wtts_stats::{dominant_period, forecast_rmse, ljung_box};
use wtts_timeseries::{aggregate, daily_windows, Granularity};

/// §4.2 quantified: the paper's ARIMA verdict. AR models track traffic
/// *within* a burst (persistence), but they cannot predict burst *onsets* —
/// the rare active-traffic events ISP planning actually cares about — and
/// they add almost nothing over the trivial persistence predictor.
pub fn sec4_arima(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, 10);
    let mut t = Table::new(
        "Sec 4.2 - AR(4) one-step forecasts on traffic",
        &[
            "granularity",
            "skill vs mean",
            "skill vs persistence",
            "burst onsets captured",
        ],
    );
    for g in [
        Granularity::minutes(1),
        Granularity::minutes(30),
        Granularity::hours(3),
    ] {
        let mut vs_mean = Vec::new();
        let mut vs_persist = Vec::new();
        let mut onsets = 0usize;
        let mut captured = 0usize;
        for &id in &ids {
            let gw = fleet.gateway(id);
            let total = first_weeks(&gw.aggregate_total(), 2);
            let agg = aggregate(&total, g, 0);
            let values = agg.values();
            let Some(cmp) = forecast_rmse(values, 4, 0.7) else {
                continue;
            };
            vs_mean.push(cmp.skill_vs_mean());
            if cmp.persistence_rmse > 0.0 {
                vs_persist.push(1.0 - cmp.model_rmse / cmp.persistence_rmse);
            }
            // Burst onsets in the test region: a jump from quiet to loud.
            let split = (values.len() as f64 * 0.7) as usize;
            let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
            let med = wtts_stats::median(&finite).max(1.0);
            for t_idx in split.max(1)..values.len() {
                let (prev, cur) = (values[t_idx - 1], values[t_idx]);
                if !prev.is_finite() || !cur.is_finite() {
                    continue;
                }
                if cur > 10.0 * med && prev < 2.0 * med {
                    onsets += 1;
                    let pred = cmp.model.forecast_one(&values[..t_idx]);
                    if pred >= 0.5 * cur {
                        captured += 1;
                    }
                }
            }
        }
        t.row(&[
            g.to_string(),
            fmt(wtts_stats::mean(&vs_mean), 3),
            fmt(wtts_stats::mean(&vs_persist), 3),
            format!("{captured}/{onsets}"),
        ]);
    }
    t.emit(out);
    println!(
        "Within-burst persistence is easy (positive skill vs the mean), but \
burst onsets — the events that matter — are essentially never predicted, \
and the model barely improves on naive persistence: the paper's ARIMA \
verdict.\n"
    );
}

/// §4.2's "no gateway exhibits a seasonal behavior" quantified with the
/// periodogram: at 1-minute binning no spectral line dominates (bursts
/// spread the spectrum), while hourly aggregation reveals the ordinary
/// diurnal rhythm — low-level autocorrelation exists (Ljung–Box rejects
/// whiteness) but never a clean seasonal signal.
pub fn sec4_seasonal(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, 10);
    let mut t = Table::new(
        "Sec 4.2 - seasonality check (periodogram + Ljung-Box)",
        &[
            "gateway",
            "1m peak period (h)",
            "1m peak share",
            "1h peak period (h)",
            "1h peak share",
            "LB rejects whiteness",
        ],
    );
    for &id in &ids {
        let gw = fleet.gateway(id);
        let total = first_weeks(&gw.aggregate_total(), 2);
        let minute = total.observed_values();
        let hourly = aggregate(&total, Granularity::hours(1), 0).observed_values();
        let m = dominant_period(&minute);
        let h = dominant_period(&hourly);
        let lb = ljung_box(&minute, 60);
        t.row(&[
            id.to_string(),
            fmt(
                m.map(|(l, _)| l.period_samples() / 60.0)
                    .unwrap_or(f64::NAN),
                1,
            ),
            fmt(m.map(|(_, s)| s).unwrap_or(f64::NAN), 3),
            fmt(h.map(|(l, _)| l.period_samples()).unwrap_or(f64::NAN), 1),
            fmt(h.map(|(_, s)| s).unwrap_or(f64::NAN), 3),
            lb.map(|l| l.rejects_whiteness(0.05).to_string())
                .unwrap_or("-".into()),
        ]);
    }
    t.emit(out);
    println!(
        "Low per-minute peak shares = no seasonal component worth modeling \
(the paper's finding); the hourly view shows the ordinary ~24h rhythm.\n"
    );
}

/// The intro's use case: recommend per-gateway maintenance windows and
/// check how many homes would be disturbed by the naive fleet-wide
/// night-time broadcast instead.
pub fn app_maintenance(fleet: &Fleet, out: Option<&Path>) {
    let duration = 120; // 2-hour update window.
    let mut per_hour: HashMap<u32, usize> = HashMap::new();
    let mut night_disturbed = 0usize; // Naive 03:00-05:00 broadcast hits activity.
    let mut analyzed = 0usize;
    let mut examples = Vec::new();
    for gw in fleet.iter() {
        let active = first_weeks(&active_total(&gw), 4);
        let Some(profile) = WeeklyProfile::from_active_series(&active, 60) else {
            continue;
        };
        let Some(window) = profile.recommend(duration) else {
            continue;
        };
        analyzed += 1;
        *per_hour.entry(window.start_minute / 60).or_insert(0) += 1;
        // Would the naive "everyone at 3am" policy hit this home? Count
        // homes with *meaningful* overnight activity — more than 1 MB
        // expected inside some 03:00-05:00 slot (stray syncs don't count,
        // an active user does).
        let night_busy = (0..7).any(|d| {
            let day = wtts_timeseries::Weekday::from_index(d);
            profile.cell(day, 3) > 1e6 || profile.cell(day, 4) > 1e6
        });
        if night_busy {
            night_disturbed += 1;
        }
        if examples.len() < 5 {
            examples.push((gw.id, gw.archetype.to_string(), window));
        }
    }

    let mut t = Table::new(
        "App - recommended maintenance window start hours (2h windows)",
        &["start hour", "gateways"],
    );
    let mut hours: Vec<(u32, usize)> = per_hour.into_iter().collect();
    hours.sort();
    for (h, count) in hours {
        t.row(&[format!("{h:02}:00"), count.to_string()]);
    }
    t.emit(out);

    let mut t = Table::new(
        "App - example per-gateway recommendations",
        &[
            "gateway",
            "archetype",
            "window",
            "expected bytes",
            "silent share",
        ],
    );
    for (id, archetype, w) in examples {
        t.row(&[
            id.to_string(),
            archetype,
            w.label(),
            fmt(w.expected_bytes, 0),
            pct(w.silent_share),
        ]);
    }
    t.emit(out);

    println!(
        "{analyzed} gateways analyzed; a naive fleet-wide 03:00 broadcast would \
hit {night_disturbed} homes with meaningful overnight activity ({}). \
Per-home windows avoid all of them.\n",
        pct(night_disturbed as f64 / analyzed.max(1) as f64)
    );
}

/// The troubleshooting use case: learn each home's behavior from three
/// weeks, then score a fourth week in which we inject known faults — a
/// dead day (radio/upstream outage) and a night-long flood (runaway
/// device). Reports detection and false-positive rates.
pub fn app_troubleshoot(fleet: &Fleet, out: Option<&Path>) {
    let train_weeks = 3;
    let g = Granularity::hours(3);
    let mut injected = 0usize;
    let mut detected = 0usize;
    let mut clean_days = 0usize;
    let mut false_alarms = 0usize;
    let mut insufficient = 0usize;
    for gw in fleet.iter().take(60) {
        let active = first_weeks(&active_total(&gw), train_weeks + 1);
        let binned = aggregate(&active, g, 0);
        let windows = daily_windows(&binned, train_weeks + 1, 0);
        let (train, test): (Vec<_>, Vec<_>) =
            windows.into_iter().partition(|w| w.week < train_weeks);
        let detector = AnomalyDetector::new(
            train
                .into_iter()
                .filter_map(|w| w.weekday.map(|d| (d, w.series.into_values()))),
            AnomalyConfig::default(),
        );
        for (i, w) in test.into_iter().enumerate() {
            let Some(day) = w.weekday else { continue };
            let mut values = w.series.into_values();
            let fault: Option<&str> = match i {
                1 => {
                    // Dead day: the home reports, but nothing moves.
                    values.iter_mut().for_each(|v| {
                        if v.is_finite() {
                            *v = 0.0;
                        }
                    });
                    Some("dead")
                }
                4 => {
                    // Runaway device floods the uplink all night.
                    for (b, v) in values.iter_mut().enumerate() {
                        if b < 3 {
                            *v = 5e9;
                        }
                    }
                    Some("flood")
                }
                _ => None,
            };
            let verdict = detector.score(day, &values);
            match (fault, verdict.is_anomalous()) {
                (Some(_), true) => {
                    injected += 1;
                    detected += 1;
                }
                (Some(_), false) => injected += 1,
                (None, anomalous) => {
                    if verdict == wtts_core::anomaly::Verdict::Insufficient {
                        insufficient += 1;
                    } else {
                        clean_days += 1;
                        if anomalous {
                            false_alarms += 1;
                        }
                    }
                }
            }
        }
    }
    let mut t = Table::new(
        "App - anomaly detection on injected faults",
        &["metric", "value"],
    );
    t.row(&["injected faults".into(), injected.to_string()]);
    t.row(&[
        "detected".into(),
        format!(
            "{detected} ({})",
            pct(detected as f64 / injected.max(1) as f64)
        ),
    ]);
    t.row(&["clean days scored".into(), clean_days.to_string()]);
    t.row(&[
        "false alarms".into(),
        format!(
            "{false_alarms} ({})",
            pct(false_alarms as f64 / clean_days.max(1) as f64)
        ),
    ]);
    t.row(&["insufficient history".into(), insufficient.to_string()]);
    t.emit(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn application_experiments_run_small() {
        let fleet = Fleet::new(FleetConfig::small());
        sec4_arima(&fleet, None);
        app_maintenance(&fleet, None);
        app_troubleshoot(&fleet, None);
    }
}
