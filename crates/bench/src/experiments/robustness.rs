//! Robustness sweep: the headline findings must hold across seeds and
//! deployment scenarios, or they are artifacts of one synthetic draw.

use crate::data::{first_weeks, observed_every_week};
use crate::report::{fmt, pct, Table};
use std::path::Path;
use wtts_core::dominance::dominant_devices;
use wtts_gwsim::{Fleet, FleetConfig};
use wtts_stats::pearson;
use wtts_timeseries::TimeSeries;

/// Headline statistics of one fleet draw.
struct Headline {
    in_out_mean: f64,
    share_with_dominant: f64,
    mean_dominants: f64,
}

fn headline(fleet: &Fleet) -> Headline {
    let weeks = 2;
    let mut cors = Vec::new();
    let mut eligible = 0usize;
    let mut with_dominant = 0usize;
    let mut dominants = 0usize;
    for gw in fleet.iter() {
        let inc = first_weeks(&gw.aggregate_incoming(), weeks);
        let out = first_weeks(&gw.aggregate_outgoing(), weeks);
        let r = pearson(inc.values(), out.values());
        if r.n > 1000 {
            cors.push(r.value);
        }
        let devices: Vec<TimeSeries> = gw
            .devices
            .iter()
            .map(|d| first_weeks(&d.total(), weeks))
            .collect();
        let total = TimeSeries::sum_all(devices.iter()).expect("devices");
        if !observed_every_week(&total, weeks) {
            continue;
        }
        eligible += 1;
        let dom = dominant_devices(&total, &devices, 0.6);
        if !dom.is_empty() {
            with_dominant += 1;
        }
        dominants += dom.len();
    }
    Headline {
        in_out_mean: wtts_stats::mean(&cors),
        share_with_dominant: with_dominant as f64 / eligible.max(1) as f64,
        mean_dominants: dominants as f64 / eligible.max(1) as f64,
    }
}

/// Sweeps seeds and scenarios, reporting the fleet-level statistics the
/// paper's conclusions rest on.
pub fn robustness(out: Option<&Path>) {
    let base = FleetConfig {
        n_gateways: 48,
        weeks: 2,
        ..FleetConfig::default()
    };
    let mut t = Table::new(
        "Robustness - headline statistics across seeds and scenarios",
        &[
            "variant",
            "in/out mean cor",
            ">=1 dominant",
            "mean dominants",
        ],
    );
    let variants: Vec<(String, FleetConfig)> = vec![
        (
            "default seed A".into(),
            FleetConfig {
                seed: 1,
                ..base.clone()
            },
        ),
        (
            "default seed B".into(),
            FleetConfig {
                seed: 0xB0B,
                ..base.clone()
            },
        ),
        (
            "default seed C".into(),
            FleetConfig {
                seed: 0xFEED,
                ..base.clone()
            },
        ),
        (
            "rural ADSL".into(),
            FleetConfig {
                n_gateways: 48,
                weeks: 2,
                seed: 1,
                ..FleetConfig::rural_adsl()
            },
        ),
        (
            "busy urban".into(),
            FleetConfig {
                n_gateways: 48,
                weeks: 2,
                seed: 1,
                ..FleetConfig::busy_urban()
            },
        ),
    ];
    for (name, config) in variants {
        let h = headline(&Fleet::new(config));
        t.row(&[
            name,
            fmt(h.in_out_mean, 3),
            pct(h.share_with_dominant),
            fmt(h.mean_dominants, 2),
        ]);
    }
    t.emit(out);
    println!(
        "Stable columns = the findings are properties of the model, not of \
one random draw.\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_statistics_sane() {
        let fleet = Fleet::new(FleetConfig {
            n_gateways: 6,
            weeks: 2,
            seed: 99,
            ..FleetConfig::default()
        });
        let h = headline(&fleet);
        assert!(h.in_out_mean > 0.5);
        assert!((0.0..=1.0).contains(&h.share_with_dominant));
        assert!(h.mean_dominants <= 5.0);
    }
}
