//! Section 5's similarity-measure argument, quantified, plus the §3
//! device-classifier validation.

use crate::data::{active_total, first_weeks};
use crate::report::{fmt, pct, Table};
use std::collections::HashMap;
use std::path::Path;
use wtts_core::similarity::cor;
use wtts_devid::DeviceType;
use wtts_gwsim::Fleet;
use wtts_stats::{dtw, euclidean};
use wtts_timeseries::{aggregate, daily_windows, Granularity};

/// §5: why correlation similarity fits the application and Euclidean/DTW do
/// not. Three probes per requirement the paper lists:
///
/// (a) *trend identification under scaling* — a day and the same day at 3×
///     the volume must read as "the same behavior";
/// (b) *time alignment* — the same pattern shifted by three hours must NOT
///     read as the same behavior (ISPs schedule against wall-clock time);
/// (c) *interpretability* — `cor` has fixed, meaningful thresholds, while
///     raw distances need per-pair calibration (shown via their spread).
pub fn sec5_measures(fleet: &Fleet, out: Option<&Path>) {
    let g = Granularity::hours(1); // 24-bin days: shifts are visible.
    let mut scale_cor_ok = 0usize;
    let mut scale_euc_ok = 0usize;
    let mut shift_cor_ok = 0usize;
    let mut shift_dtw_ok = 0usize;
    let mut pairs = 0usize;
    let mut euc_values: Vec<f64> = Vec::new();
    for gw in fleet.iter().take(40) {
        let active = first_weeks(&active_total(&gw), 1);
        let binned = aggregate(&active, g, 0);
        for w in daily_windows(&binned, 1, 0) {
            let day = w.series.into_values();
            if day.iter().filter(|v| v.is_finite() && **v > 0.0).count() < 4 {
                continue;
            }
            let day: Vec<f64> = day
                .iter()
                .map(|v| if v.is_finite() { *v } else { 0.0 })
                .collect();
            pairs += 1;

            // (a) Scaled copy: same behavior, 3x the bytes.
            let scaled: Vec<f64> = day.iter().map(|v| v * 3.0).collect();
            if cor(&day, &scaled) > 0.6 {
                scale_cor_ok += 1;
            }
            // Euclidean thinks the scaled day is as far away as an all-zero
            // day; count it "ok" when the scaled copy is closer than zeros.
            let zeros = vec![0.0; day.len()];
            let d_scaled = euclidean(&day, &scaled);
            let d_zero = euclidean(&day, &zeros);
            if d_scaled < d_zero {
                scale_euc_ok += 1;
            }
            euc_values.push(d_scaled);

            // (b) The same day rotated by 3 hours: different wall-clock
            // behavior. "ok" = the measure refuses to call it the same.
            let mut shifted = day.clone();
            shifted.rotate_right(3);
            if cor(&day, &shifted) <= 0.6 {
                shift_cor_ok += 1;
            }
            // DTW absorbs the shift: its distance to the shifted day is far
            // below the distance to an unrelated constant; "ok" = it does
            // NOT absorb (never happens — that is the point).
            let flat = vec![day.iter().sum::<f64>() / day.len() as f64; day.len()];
            if dtw(&day, &shifted) >= dtw(&day, &flat) {
                shift_dtw_ok += 1;
            }
        }
    }
    let mut t = Table::new(
        "Sec 5 - measure requirements scorecard",
        &["requirement", "cor (Def. 1)", "baseline"],
    );
    t.row(&[
        "(a) scaling-invariant trend match".into(),
        pct(scale_cor_ok as f64 / pairs.max(1) as f64),
        format!(
            "euclid beats zero-day: {}",
            pct(scale_euc_ok as f64 / pairs.max(1) as f64)
        ),
    ]);
    t.row(&[
        "(b) rejects 3h-shifted pattern".into(),
        pct(shift_cor_ok as f64 / pairs.max(1) as f64),
        format!(
            "dtw rejects shift: {}",
            pct(shift_dtw_ok as f64 / pairs.max(1) as f64)
        ),
    ]);
    let spread = if euc_values.is_empty() {
        0.0
    } else {
        wtts_stats::quantile(&euc_values, 0.9) / wtts_stats::quantile(&euc_values, 0.1).max(1.0)
    };
    t.row(&[
        "(c) fixed interpretable threshold".into(),
        "yes: [-1, 1], 0.6 = high".into(),
        format!("euclid spread p90/p10 = {}", fmt(spread, 0)),
    ]);
    t.emit(out);
    println!("{pairs} day-windows probed\n");
}

/// §3: the device classifier validated against ground truth, as the paper
/// did with its 49-home survey.
pub fn sec3_classifier(fleet: &Fleet, out: Option<&Path>) {
    let survey_homes = 49;
    let mut confusion: HashMap<(DeviceType, DeviceType), usize> = HashMap::new();
    let mut total = 0usize;
    let mut correct = 0usize;
    for gw in fleet.iter().take(survey_homes) {
        for d in &gw.devices {
            let truth = d.spec.true_type;
            let inferred = d.inferred_type();
            *confusion.entry((truth, inferred)).or_insert(0) += 1;
            total += 1;
            if truth == inferred {
                correct += 1;
            }
        }
    }
    let mut t = Table::new(
        "Sec 3 - classifier confusion over the survey subset (rows = truth)",
        &[
            "truth \\ inferred",
            "portable",
            "fixed",
            "tv",
            "game_console",
            "network_eq",
            "unlabeled",
        ],
    );
    for truth in DeviceType::ALL {
        if truth == DeviceType::Unlabeled {
            continue;
        }
        let get = |inf: DeviceType| {
            confusion
                .get(&(truth, inf))
                .copied()
                .unwrap_or(0)
                .to_string()
        };
        t.row(&[
            truth.label().to_string(),
            get(DeviceType::Portable),
            get(DeviceType::Fixed),
            get(DeviceType::SmartTv),
            get(DeviceType::GameConsole),
            get(DeviceType::NetworkEquipment),
            get(DeviceType::Unlabeled),
        ]);
    }
    t.emit(out);
    println!(
        "{survey_homes} survey homes, {total} devices, accuracy {}\n",
        pct(correct as f64 / total.max(1) as f64)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn measures_experiments_run_small() {
        let fleet = Fleet::new(FleetConfig::small());
        sec5_measures(&fleet, None);
        sec3_classifier(&fleet, None);
    }
}
