//! The experiment suite: one module per figure/table family of the paper.

pub mod aggregation;
pub mod applications;
pub mod background;
pub mod dominance;
pub mod lagsearch;
pub mod measures;
pub mod motifs;
pub mod robustness;
pub mod sax;
pub mod standard;
