//! Multi-scale lead/lag discovery across gateway pairs (Section 4.2 /
//! Figure 2, generalized): instead of reading one CCF plot for one pair at
//! one granularity, sweep every pair of the densest gateways over a whole
//! scale × lag grid and report the strongest lead/lag relations per scale,
//! a Fig-2-style correlogram for the top pair, and the prune accounting of
//! the engine that made the grid affordable.

use crate::data::first_weeks;
use crate::experiments::standard::most_observed_gateways;
use crate::report::{fmt, pct, Table};
use std::path::Path;
use wtts_core::lagsearch::{lag_search, LagCell, LagSearchConfig};
use wtts_core::PipelineObs;
use wtts_gwsim::Fleet;
use wtts_timeseries::{Granularity, TimeSeries};

/// How many gateways enter the pairwise grid and how many leads to print.
const GATEWAYS: usize = 10;
const TOP_K: usize = 5;

/// The reporting threshold: relations below it are uninteresting for the
/// lead/lag reading, which is what lets the engine prune their cells.
const PHI: f64 = 0.25;

pub fn lag_search_experiment(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, GATEWAYS);
    let series: Vec<TimeSeries> = ids
        .iter()
        .map(|&id| first_weeks(&fleet.gateway(id).aggregate_total(), 2))
        .collect();
    let config = LagSearchConfig {
        scales: vec![
            Granularity::minutes(30),
            Granularity::hours(1),
            Granularity::hours(2),
        ],
        max_lag_bins: 24,
        phi: PHI,
        ..LagSearchConfig::default()
    };
    let obs = PipelineObs::new();
    let result = lag_search(&series, &config, Some(&obs));
    println!(
        "{} gateways -> {} pairs x {} scales, phi = {PHI}: {} cells, {} evaluated exactly",
        ids.len(),
        result.pairs.len(),
        result.scales.len(),
        result.stats.cells_total,
        result.stats.evaluated,
    );

    // Top lead/lag relations per scale.
    let mut t = Table::new(
        "Lag search - strongest lead/lag relations per scale",
        &[
            "scale", "leader", "follower", "lead_min", "ccf", "n_pairs", "signif",
        ],
    );
    let mut top_pair: Option<(usize, usize, f64)> = None;
    for (s, &scale) in result.scales.iter().enumerate() {
        for lead in result.top_leads(s, TOP_K) {
            t.row(&[
                format!("{}m", scale.as_minutes()),
                format!("#{}", ids[lead.leader]),
                format!("#{}", ids[lead.follower]),
                lead.lead_minutes.to_string(),
                fmt(lead.value, 3),
                lead.n_pairs.to_string(),
                lead.significant.to_string(),
            ]);
            let p = result
                .pairs
                .iter()
                .position(|&pr| pr == lead.pair)
                .expect("reported pair is in the grid");
            if top_pair.is_none_or(|(_, _, v)| lead.value > v) {
                top_pair = Some((p, s, lead.value));
            }
        }
    }
    if t.is_empty() {
        println!("no pair clears phi = {PHI} at any scale");
    }
    t.emit(out);

    // Fig-2-style correlogram of the overall strongest pair.
    if let Some((p, s, _)) = top_pair {
        let (i, j) = result.pairs[p];
        let scale = result.scales[s];
        let l = result.lag_bins_by_scale[s] as i64;
        let cells = result.grid[p][s]
            .cells
            .as_ref()
            .expect("the top pair has a live correlogram");
        let mut t = Table::new(
            &format!(
                "Lag search - CCF of #{} vs #{} at {}m (pruned cells are provably < phi)",
                ids[i],
                ids[j],
                scale.as_minutes()
            ),
            &["lag_bins", "lag_min", "ccf", "n_pairs"],
        );
        for (idx, cell) in cells.iter().enumerate() {
            let lag = idx as i64 - l;
            if lag % 4 != 0 {
                continue;
            }
            let (value, n_pairs) = match *cell {
                LagCell::Exact { value, n_pairs } => (fmt(value, 3), n_pairs.to_string()),
                LagCell::Pruned => (format!("< {PHI}"), "-".into()),
            };
            t.row(&[
                lag.to_string(),
                (lag * scale.as_minutes() as i64).to_string(),
                value,
                n_pairs,
            ]);
        }
        t.emit(out);
    }

    // Prune accounting: how the grid was paid for, and the conservation
    // law that says no cell was silently dropped.
    let stats = result.stats;
    let snap = obs.snapshot();
    let mut t = Table::new(
        "Lag search - cell accounting",
        &["bucket", "cells", "share"],
    );
    let share = |n: u64| {
        if stats.cells_total == 0 {
            pct(0.0)
        } else {
            pct(n as f64 / stats.cells_total as f64)
        }
    };
    t.row(&[
        "degenerate side".into(),
        stats.pruned_degenerate.to_string(),
        share(stats.pruned_degenerate),
    ]);
    t.row(&[
        "sketch bound (lag 0)".into(),
        stats.pruned_sketch.to_string(),
        share(stats.pruned_sketch),
    ]);
    t.row(&[
        "energy bound".into(),
        stats.pruned_energy.to_string(),
        share(stats.pruned_energy),
    ]);
    t.row(&[
        "evaluated exactly".into(),
        stats.evaluated.to_string(),
        share(stats.evaluated),
    ]);
    t.row(&["total".into(), stats.cells_total.to_string(), pct(1.0)]);
    t.emit(out);
    assert!(
        stats.conserved() && snap.conserved(),
        "prune conservation law violated: {stats:?}"
    );
    println!(
        "conservation holds: {} pruned + {} evaluated == {} cells (obs counters agree)",
        stats.pruned(),
        stats.evaluated,
        stats.cells_total,
    );
}
