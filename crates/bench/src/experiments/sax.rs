//! §2 quantified: why SAX-based motif tools fail on Zipfian traffic.

use crate::data::first_weeks;
use crate::experiments::standard::most_observed_gateways;
use crate::report::{pct, Table};
use std::path::Path;
use wtts_core::sax::{alphabet_utilization, dominant_symbol_share, sax_word};
use wtts_gwsim::Fleet;
use wtts_stats::z_normalize;

/// Measures SAX alphabet utilization on real(istic) gateway traffic against
/// a Gaussian control signal, and shows that z-normalization does not
/// normalize Zipfian values.
pub fn sec2_sax(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, 5);
    let alphabet = 8;
    let segments = 64;

    let mut t = Table::new(
        "Sec 2 - SAX alphabet utilization on traffic vs Gaussian control",
        &["series", "utilization", "dominant symbol share"],
    );
    for &id in &ids {
        let gw = fleet.gateway(id);
        let values = first_weeks(&gw.aggregate_total(), 1).observed_values();
        let word = sax_word(&values, segments, alphabet);
        t.row(&[
            format!("gateway {id}"),
            pct(alphabet_utilization(&word, alphabet)),
            pct(dominant_symbol_share(&word)),
        ]);
    }
    // Control: a smooth sinusoid uses the whole alphabet.
    let control: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.05).sin()).collect();
    let word = sax_word(&control, segments, alphabet);
    t.row(&[
        "gaussian-like control".into(),
        pct(alphabet_utilization(&word, alphabet)),
        pct(dominant_symbol_share(&word)),
    ]);
    t.emit(out);

    // z-normalization does not gaussianize: share of z-values in the
    // central Gaussian band vs expectation.
    let mut t = Table::new(
        "Sec 2 - z-normalized traffic is not normal",
        &["series", "|z| < 0.43 share", "expected if normal"],
    );
    for &id in ids.iter().take(3) {
        let gw = fleet.gateway(id);
        let values = first_weeks(&gw.aggregate_total(), 1).observed_values();
        let z = z_normalize(&values);
        let central = z.iter().filter(|v| v.abs() < 0.43).count() as f64 / z.len() as f64;
        t.row(&[format!("gateway {id}"), pct(central), pct(0.333)]);
    }
    t.emit(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn sax_experiment_runs() {
        let fleet = Fleet::new(FleetConfig::small());
        sec2_sax(&fleet, None);
    }
}
