//! Section 4 standard analyses: Figures 1–3 and the §4.1/§4.2 text results.

use crate::data::first_weeks;
use crate::report::{fmt, pct, Table};
use std::path::Path;
use wtts_core::clustering::cluster_correlated;
use wtts_gwsim::Fleet;
use wtts_stats::zipf::fit_zipf;
use wtts_stats::{
    acf, adf_test, ccf, effective_sample_size, kpss_test, ks_two_sample, pearson,
    significance_bound, significance_bound_effective, BoxplotStats, Kde,
};
use wtts_timeseries::{aggregate, Granularity};

/// Ranks gateway ids by number of week-0 observations, densest first.
pub fn most_observed_gateways(fleet: &Fleet, top: usize) -> Vec<usize> {
    let mut counts: Vec<(usize, usize)> = fleet
        .iter()
        .map(|gw| {
            (
                gw.id,
                first_weeks(&gw.aggregate_total(), 1).observed_count(),
            )
        })
        .collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    counts.into_iter().take(top).map(|(id, _)| id).collect()
}

/// Figure 1: statistical portrait of a typical gateway — KDE of the traffic
/// PDF near zero, the raw series' shape, boxplots with and without
/// outliers.
pub fn fig1(fleet: &Fleet, out: Option<&Path>) {
    let id = most_observed_gateways(fleet, 1)[0];
    let gw = fleet.gateway(id);
    let incoming = first_weeks(&gw.aggregate_incoming(), 1);
    let values = incoming.observed_values();
    println!(
        "Typical gateway = #{id}: {} observations in week 0, max {} bytes/min",
        values.len(),
        fmt(incoming.max().unwrap_or(f64::NAN), 0),
    );

    // (a) PDF estimate near zero.
    let mut t = Table::new(
        "Fig 1a - KDE of incoming traffic (zoom near 0)",
        &["bytes", "density"],
    );
    if let Some(kde) = Kde::from_samples(&values) {
        let hi = wtts_stats::quantile(&values, 0.999);
        for (x, d) in kde.grid(0.0, hi.max(1.0), 25) {
            t.row(&[fmt(x, 0), format!("{d:.3e}")]);
        }
    }
    t.emit(out);

    // (b) series summary per hour-of-day to show the burst structure.
    let mut t = Table::new(
        "Fig 1b - incoming traffic by hour (week 0)",
        &["hour", "mean B/min", "max B/min"],
    );
    let hourly = aggregate(&incoming, Granularity::hours(1), 0);
    for h in 0..24 {
        let vals: Vec<f64> = hourly
            .values()
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, v)| i % 24 == h && v.is_finite())
            .map(|(_, v)| v / 60.0)
            .collect();
        let mean = wtts_stats::mean(&vals);
        let max = vals.iter().copied().fold(f64::NAN, f64::max);
        t.row(&[format!("{h:02}"), fmt(mean, 0), fmt(max, 0)]);
    }
    t.emit(out);

    // (c)/(d) boxplots with and without outliers.
    let b = BoxplotStats::from_samples(&values).expect("observations exist");
    let mut t = Table::new("Fig 1cd - boxplot of incoming traffic", &["stat", "value"]);
    for (name, v) in [
        ("min", b.min),
        ("q1", b.q1),
        ("median", b.median),
        ("q3", b.q3),
        ("upper whisker", b.upper_whisker),
        ("max (with outliers)", b.max),
    ] {
        t.row(&[name.to_string(), fmt(v, 1)]);
    }
    t.row(&[
        "outliers above whisker".into(),
        b.upper_outliers.to_string(),
    ]);
    t.row(&[
        "outlier share".into(),
        pct(b.upper_outliers as f64 / b.n as f64),
    ]);
    t.emit(out);
}

/// §4.1 text: Zipf-law fit of traffic values of the 10 most representative
/// gateways and the incoming/outgoing correlation across the fleet.
pub fn sec4_dist(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, 10);
    let mut t = Table::new(
        "Sec 4.1 - Zipf fits of per-minute traffic (top-10 gateways)",
        &["gateway", "exponent", "r^2", "zipfian?"],
    );
    for &id in &ids {
        let gw = fleet.gateway(id);
        let values = first_weeks(&gw.aggregate_total(), 1).observed_values();
        match fit_zipf(&values, 20) {
            Some(fit) => t.row(&[
                id.to_string(),
                fmt(fit.exponent, 2),
                fmt(fit.r_squared, 2),
                fit.is_zipfian().to_string(),
            ]),
            None => t.row(&[id.to_string(), "-".into(), "-".into(), "-".into()]),
        };
    }
    t.emit(out);

    // In/out correlation across all gateways (paper: mean .92, median .95,
    // stddev .08).
    let mut cors = Vec::new();
    for gw in fleet.iter() {
        let inc = first_weeks(&gw.aggregate_incoming(), 4);
        let outg = first_weeks(&gw.aggregate_outgoing(), 4);
        let r = pearson(inc.values(), outg.values());
        if r.n > 1000 && r.significant(0.05) {
            cors.push(r.value);
        }
    }
    let mut t = Table::new(
        "Sec 4.1 - incoming/outgoing correlation",
        &["stat", "value"],
    );
    t.row(&["gateways".into(), cors.len().to_string()]);
    t.row(&["mean".into(), fmt(wtts_stats::mean(&cors), 3)]);
    t.row(&["median".into(), fmt(wtts_stats::median(&cors), 3)]);
    t.row(&["stddev".into(), fmt(wtts_stats::std_dev(&cors), 3)]);
    t.emit(out);
}

/// Figure 2: autocorrelation of a gateway and lagged cross-correlation of a
/// gateway pair, at a 1-hour aggregation (per-minute lags are dominated by
/// burst noise).
pub fn fig2(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, 6);
    // Pick the gateway with the strongest lag-24h (daily) autocorrelation.
    let acfs: Vec<(usize, Vec<f64>, Vec<f64>)> = ids
        .iter()
        .filter_map(|&id| {
            let gw = fleet.gateway(id);
            let hourly = aggregate(
                &first_weeks(&gw.aggregate_total(), 2),
                Granularity::hours(1),
                0,
            );
            let a = acf(hourly.values(), 48).ok()?;
            (a.len() > 24 && a[24].is_finite()).then(|| (id, a, hourly.values().to_vec()))
        })
        .collect();
    let (best_id, best_acf, best_hourly) = acfs
        .iter()
        .max_by(|a, b| {
            a.1[24]
                .abs()
                .partial_cmp(&b.1[24].abs())
                .expect("finite acf")
        })
        .cloned()
        .expect("at least one gateway with an ACF");
    // The white-noise band is set by how many hourly bins were actually
    // observed, not by the nominal two-week span.
    let bound = significance_bound_effective(&best_hourly);
    println!(
        "most autocorrelated gateway = #{best_id}: {} of {} hourly bins observed, band ±{bound:.3}",
        effective_sample_size(&best_hourly),
        best_hourly.len(),
    );
    let mut t = Table::new(
        "Fig 2 - ACF of the most autocorrelated gateway (hourly)",
        &["lag_h", "acf", "significant"],
    );
    for (lag, v) in best_acf.iter().enumerate() {
        if lag % 4 == 0 {
            t.row(&[lag.to_string(), fmt(*v, 3), (v.abs() > bound).to_string()]);
        }
    }
    t.emit(out);

    // Cross-correlation of the two densest gateways.
    let a = aggregate(
        &first_weeks(&fleet.gateway(ids[0]).aggregate_total(), 2),
        Granularity::hours(1),
        0,
    );
    let b = aggregate(
        &first_weeks(&fleet.gateway(ids[1]).aggregate_total(), 2),
        Granularity::hours(1),
        0,
    );
    let c = match ccf(a.values(), b.values(), 24) {
        Ok(c) => c,
        Err(e) => {
            println!("no CCF between the two densest gateways: {e}");
            return;
        }
    };
    // Effective sample size of a cross-correlogram: the sparser side's
    // observed bin count.
    let ccf_bound = significance_bound(
        effective_sample_size(a.values()).min(effective_sample_size(b.values())),
    );
    let mut t = Table::new(
        "Fig 2 - CCF of the two densest gateways (hourly)",
        &["lag_h", "ccf", "significant"],
    );
    for (i, v) in c.iter().enumerate() {
        let lag = i as i64 - 24;
        if lag % 4 == 0 {
            t.row(&[
                lag.to_string(),
                fmt(*v, 3),
                (v.abs() > ccf_bound).to_string(),
            ]);
        }
    }
    t.emit(out);
}

/// §4.2 text: classical stationarity is rejected at 1-minute binning;
/// traffic vs connected-device-count correlation is weak; distribution
/// similarity (KS) grows with the aggregation period.
pub fn sec4_stat(fleet: &Fleet, out: Option<&Path>) {
    let sample: Vec<usize> = most_observed_gateways(fleet, 30);
    let mut kpss_reject = 0usize;
    let mut adf_nonreject = 0usize;
    let mut tested = 0usize;
    let mut device_cors = Vec::new();
    for &id in &sample {
        let gw = fleet.gateway(id);
        let total = first_weeks(&gw.aggregate_total(), 1);
        let values = total.observed_values();
        if values.len() < 2000 {
            continue;
        }
        tested += 1;
        if let Some(k) = kpss_test(&values) {
            if k.rejects_stationarity(0.05) {
                kpss_reject += 1;
            }
        }
        if let Some(a) = adf_test(&values[..values.len().min(5000)], None) {
            if !a.rejects_unit_root(0.05) {
                adf_nonreject += 1;
            }
        }
        // Traffic vs number of connected devices, with the paper's
        // correlation similarity measure (Definition 1).
        let devices = first_weeks(&gw.connected_devices(), 1);
        let sim = wtts_core::similarity::correlation_similarity(total.values(), devices.values());
        if sim.is_significant() {
            device_cors.push(sim.value);
        }
    }
    let mut t = Table::new(
        "Sec 4.2 - classical stationarity at 1-min binning",
        &["check", "value"],
    );
    t.row(&["gateways tested".into(), tested.to_string()]);
    t.row(&[
        "KPSS rejects stationarity".into(),
        pct(kpss_reject as f64 / tested.max(1) as f64),
    ]);
    t.row(&[
        "ADF keeps unit root".into(),
        pct(adf_nonreject as f64 / tested.max(1) as f64),
    ]);
    t.row(&[
        "traffic~#devices mean cor".into(),
        fmt(wtts_stats::mean(&device_cors), 2),
    ]);
    t.row(&[
        "traffic~#devices median".into(),
        fmt(wtts_stats::median(&device_cors), 2),
    ]);
    t.row(&[
        "traffic~#devices stddev".into(),
        fmt(wtts_stats::std_dev(&device_cors), 2),
    ]);
    t.emit(out);

    // KS similarity across weeks vs aggregation.
    let mut t = Table::new(
        "Sec 4.2 - KS rejections between weeks vs aggregation",
        &["granularity", "KS rejected"],
    );
    for g in [
        Granularity::minutes(1),
        Granularity::minutes(30),
        Granularity::hours(3),
        Granularity::hours(8),
    ] {
        let mut rejected = 0usize;
        let mut pairs = 0usize;
        for &id in sample.iter().take(12) {
            let gw = fleet.gateway(id);
            let agg = aggregate(&first_weeks(&gw.aggregate_total(), 2), g, 0);
            let windows = wtts_timeseries::weekly_windows(&agg, 2, 0);
            if windows.len() == 2 && windows.iter().all(|w| w.has_observations()) {
                if let Some(ks) =
                    ks_two_sample(windows[0].series.values(), windows[1].series.values())
                {
                    pairs += 1;
                    if ks.rejected(0.05) {
                        rejected += 1;
                    }
                }
            }
        }
        t.row(&[g.to_string(), pct(rejected as f64 / pairs.max(1) as f64)]);
    }
    t.emit(out);
}

/// Figure 3: hierarchical clustering of gateway series under the `1 − cor`
/// distance, cut at 0.4.
pub fn fig3(fleet: &Fleet, out: Option<&Path>) {
    let ids = most_observed_gateways(fleet, 10);
    let series: Vec<Vec<f64>> = ids
        .iter()
        .map(|&id| {
            let gw = fleet.gateway(id);
            aggregate(
                &first_weeks(&gw.aggregate_total(), 2),
                Granularity::hours(3),
                0,
            )
            .into_values()
        })
        .collect();
    let clusters = cluster_correlated(&series, 0.6);
    let mut t = Table::new(
        "Fig 3 - correlation clusters of gateways (distance cut 0.4)",
        &["cluster", "gateways"],
    );
    for (k, cluster) in clusters.iter().enumerate() {
        let names: Vec<String> = cluster.iter().map(|&i| ids[i].to_string()).collect();
        t.row(&[format!("{}", k + 1), names.join(" ")]);
    }
    t.emit(out);
    println!(
        "{} clusters over {} gateways at similarity >= 0.6\n",
        clusters.len(),
        ids.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    fn small_fleet() -> Fleet {
        Fleet::new(FleetConfig::small())
    }

    #[test]
    fn most_observed_returns_requested_count() {
        let fleet = small_fleet();
        let ids = most_observed_gateways(&fleet, 3);
        assert_eq!(ids.len(), 3);
        // Densest-first: verify ordering.
        let count =
            |id: usize| first_weeks(&fleet.gateway(id).aggregate_total(), 1).observed_count();
        assert!(count(ids[0]) >= count(ids[1]));
    }

    #[test]
    fn standard_experiments_run_on_small_fleet() {
        let fleet = small_fleet();
        fig1(&fleet, None);
        sec4_dist(&fleet, None);
        fig3(&fleet, None);
    }
}
