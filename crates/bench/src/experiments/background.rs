//! Figure 4 and §6.1: per-device background thresholds, and the §6.1/§7
//! stationarity gain from removing background traffic.

use crate::data::{active_total, first_weeks, observed_every_week, raw_total};
use crate::report::{pct, Table};
use std::collections::HashMap;
use std::path::Path;
use wtts_core::aggregation::weekly_stationarity;
use wtts_core::background::{estimate_tau, TauGroup};
use wtts_devid::DeviceType;
use wtts_gwsim::Fleet;
use wtts_stats::histogram;
use wtts_timeseries::Granularity;

/// Figure 4: the distribution of the background threshold τ across devices,
/// per direction, plus the τ-group versus device-type association.
pub fn fig4(fleet: &Fleet, out: Option<&Path>) {
    let mut taus_in = Vec::new();
    let mut taus_out = Vec::new();
    // (inferred type, group) counts.
    let mut group_by_type: HashMap<(DeviceType, TauGroup), usize> = HashMap::new();
    let mut devices = 0usize;
    for gw in fleet.iter() {
        for d in &gw.devices {
            let inc = first_weeks(&d.incoming, 4);
            let outg = first_weeks(&d.outgoing, 4);
            // Only devices with a meaningful observation history (the paper
            // studied 934 devices over four weeks).
            if inc.observed_count() < 500 {
                continue;
            }
            let (Some(ti), Some(to)) = (estimate_tau(&inc), estimate_tau(&outg)) else {
                continue;
            };
            devices += 1;
            taus_in.push(ti);
            taus_out.push(to);
            let group = TauGroup::of(ti.max(to));
            *group_by_type.entry((d.inferred_type(), group)).or_insert(0) += 1;
        }
    }

    for (name, taus) in [("incoming", &taus_in), ("outgoing", &taus_out)] {
        let h = histogram(taus, 0.0, 50_000.0, 10);
        let mut t = Table::new(
            &format!("Fig 4 - distribution of tau ({name})"),
            &["tau bin (B/min)", "devices"],
        );
        for (edge, count) in h.bins() {
            t.row(&[
                format!("{:.0}-{:.0}", edge, edge + h.width),
                count.to_string(),
            ]);
        }
        t.row(&[">= 50000".into(), h.overflow.to_string()]);
        t.emit(out);
        let below_5k = taus.iter().filter(|&&x| x <= 5_000.0).count();
        let above_40k = taus.iter().filter(|&&x| x > 40_000.0).count();
        println!(
            "{name}: {} devices, {} below 5 kB/min ({}), {} above 40 kB/min\n",
            taus.len(),
            below_5k,
            pct(below_5k as f64 / taus.len().max(1) as f64),
            above_40k
        );
    }

    let mut t = Table::new(
        "Sec 6.1 - tau group by inferred device type",
        &["type", "small", "medium", "large"],
    );
    for ty in DeviceType::ALL {
        let get = |g: TauGroup| {
            group_by_type
                .get(&(ty, g))
                .copied()
                .unwrap_or(0)
                .to_string()
        };
        t.row(&[
            ty.label().to_string(),
            get(TauGroup::Small),
            get(TauGroup::Medium),
            get(TauGroup::Large),
        ]);
    }
    t.emit(out);
    println!("{devices} devices with enough observations\n");
}

/// §6.1 / §7 lead-in: the share of strongly stationary gateways (weekly
/// windows, 3-hour binning) before and after background removal — the paper
/// reports 7% → 11%.
pub fn sec6_background_gain(fleet: &Fleet, out: Option<&Path>) {
    let weeks = 4;
    let g = Granularity::hours(3);
    let mut eligible = 0usize;
    // (cor passes, KS passes, both) per variant.
    let mut raw_counts = (0usize, 0usize, 0usize);
    let mut active_counts = (0usize, 0usize, 0usize);
    for gw in fleet.iter() {
        let raw = raw_total(&gw, weeks);
        if !observed_every_week(&raw, weeks) {
            continue;
        }
        eligible += 1;
        for (series, counts) in [
            (raw, &mut raw_counts),
            (first_weeks(&active_total(&gw), weeks), &mut active_counts),
        ] {
            if let Some(c) = weekly_stationarity(&series, weeks, g, 0) {
                if c.correlations_pass {
                    counts.0 += 1;
                }
                if !c.ks_rejected {
                    counts.1 += 1;
                }
                if c.is_stationary() {
                    counts.2 += 1;
                }
            }
        }
    }
    let mut t = Table::new(
        "Sec 6.1 - stationary gateways before/after background removal",
        &["variant", "cor passes", "KS passes", "stationary", "share"],
    );
    for (name, counts) in [
        ("raw traffic", raw_counts),
        ("active traffic", active_counts),
    ] {
        t.row(&[
            name.into(),
            counts.0.to_string(),
            counts.1.to_string(),
            counts.2.to_string(),
            pct(counts.2 as f64 / eligible.max(1) as f64),
        ]);
    }
    t.emit(out);
    println!("{eligible} gateways eligible (>=1 observation each of {weeks} weeks); binning {g}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn fig4_runs_on_small_fleet() {
        let fleet = Fleet::new(FleetConfig::small());
        fig4(&fleet, None);
    }
}
