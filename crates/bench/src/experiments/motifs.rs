//! Figures 9–16: weekly and daily motif discovery and the per-motif device
//! analysis.

use crate::data::{active_total, first_weeks, fleet_map, observed_every_day, observed_every_week};
use crate::report::{fmt, pct, Table};
use std::collections::HashMap;
use std::path::Path;
use wtts_core::dominance::dominant_devices;
use wtts_core::motif::{
    discover_motifs, discover_motifs_indexed, Motif, MotifConfig, MotifIndex, WindowRef,
};
use wtts_devid::DeviceType;
use wtts_gwsim::Fleet;
use wtts_timeseries::{
    aggregate, daily_windows, weekly_windows, Granularity, Minute, TimeSeries, MINUTES_PER_DAY,
    MINUTES_PER_WEEK,
};

/// A motif-discovery input set plus its results.
pub struct MotifSet {
    /// Identity of every window.
    pub refs: Vec<WindowRef>,
    /// The window sample vectors.
    pub windows: Vec<Vec<f64>>,
    /// Profiles and pruning sketches of the windows, built once and shared
    /// by every discovery over this set (the threshold ablations re-run
    /// discovery several times; the sketches never change).
    pub index: MotifIndex,
    /// Discovered motifs, largest support first.
    pub motifs: Vec<Motif>,
    /// Number of gateways that contributed windows.
    pub n_gateways: usize,
    /// Weeks of data used.
    pub weeks: u32,
    /// Binning offset in minutes.
    pub offset: u32,
    /// Binning granularity.
    pub granularity: Granularity,
}

/// Weekly motifs: 8-hour bins with the 2am day start (the Figure 6 winner),
/// six weeks of data, gateways with at least one observation every week.
pub fn weekly_motifs(fleet: &Fleet) -> MotifSet {
    let weeks = fleet.config().weeks.min(6);
    let granularity = Granularity::hours(8);
    let offset = 120;
    let per_gateway = fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        if !observed_every_week(&active, weeks) {
            return Vec::new();
        }
        let agg = aggregate(&active, granularity, offset);
        weekly_windows(&agg, weeks, offset)
            .into_iter()
            .map(|w| {
                (
                    WindowRef {
                        gateway: gw.id,
                        week: w.week,
                        weekday: None,
                    },
                    w.series.into_values(),
                )
            })
            .collect::<Vec<_>>()
    });
    let mut refs = Vec::new();
    let mut windows = Vec::new();
    let mut n_gateways = 0usize;
    for gw_windows in per_gateway {
        if !gw_windows.is_empty() {
            n_gateways += 1;
        }
        for (r, w) in gw_windows {
            refs.push(r);
            windows.push(w);
        }
    }
    let config = MotifConfig::default();
    let index = MotifIndex::new(&windows, config.min_observations);
    let motifs = discover_motifs_indexed(&index, &config, None);
    MotifSet {
        refs,
        windows,
        index,
        motifs,
        n_gateways,
        weeks,
        offset,
        granularity,
    }
}

/// Daily motifs: 3-hour bins from midnight (the Figure 8 winner), four
/// weeks, gateways with at least one observation every day.
pub fn daily_motifs(fleet: &Fleet) -> MotifSet {
    let weeks = fleet.config().weeks.min(4);
    let granularity = Granularity::hours(3);
    let offset = 0;
    let per_gateway = fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        if !observed_every_day(&active, weeks) {
            return Vec::new();
        }
        let agg = aggregate(&active, granularity, offset);
        daily_windows(&agg, weeks, offset)
            .into_iter()
            .map(|w| {
                (
                    WindowRef {
                        gateway: gw.id,
                        week: w.week,
                        weekday: w.weekday,
                    },
                    w.series.into_values(),
                )
            })
            .collect::<Vec<_>>()
    });
    let mut refs = Vec::new();
    let mut windows = Vec::new();
    let mut n_gateways = 0usize;
    for gw_windows in per_gateway {
        if !gw_windows.is_empty() {
            n_gateways += 1;
        }
        for (r, w) in gw_windows {
            refs.push(r);
            windows.push(w);
        }
    }
    let config = MotifConfig::default();
    let index = MotifIndex::new(&windows, config.min_observations);
    let motifs = discover_motifs_indexed(&index, &config, None);
    MotifSet {
        refs,
        windows,
        index,
        motifs,
        n_gateways,
        weeks,
        offset,
        granularity,
    }
}

/// Figure 9 + Figure 10: support distributions and per-gateway motif
/// participation, for one motif set.
pub fn fig9_10(set: &MotifSet, kind: &str, out: Option<&Path>) {
    let supports: Vec<usize> = set.motifs.iter().map(|m| m.support()).collect();
    let high_support = supports.iter().filter(|&&s| s >= 10).count();
    println!(
        "{kind}: {} motifs from {} windows of {} gateways; {} with support >= 10",
        set.motifs.len(),
        set.windows.len(),
        set.n_gateways,
        high_support
    );

    let mut t = Table::new(
        &format!("Fig 9 - {kind} motif support distribution"),
        &["support", "motifs"],
    );
    let mut hist: HashMap<usize, usize> = HashMap::new();
    for &s in &supports {
        let bucket = match s {
            0..=4 => 0,
            5..=9 => 5,
            10..=19 => 10,
            20..=49 => 20,
            50..=99 => 50,
            _ => 100,
        };
        *hist.entry(bucket).or_insert(0) += 1;
    }
    for (lo, label) in [
        (0usize, "2-4"),
        (5, "5-9"),
        (10, "10-19"),
        (20, "20-49"),
        (50, "50-99"),
        (100, "100+"),
    ] {
        t.row(&[
            label.to_string(),
            hist.get(&lo).copied().unwrap_or(0).to_string(),
        ]);
    }
    t.emit(out);

    // Distinct motifs per gateway.
    let mut per_gateway: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
    for (k, m) in set.motifs.iter().enumerate() {
        for &i in &m.members {
            per_gateway
                .entry(set.refs[i].gateway)
                .or_default()
                .insert(k);
        }
    }
    let counts: Vec<f64> = per_gateway.values().map(|s| s.len() as f64).collect();
    let mut t = Table::new(
        &format!("Fig 10 - distinct {kind} motifs per gateway"),
        &["stat", "value"],
    );
    t.row(&["participating gateways".into(), counts.len().to_string()]);
    t.row(&[
        "mean motifs/gateway".into(),
        fmt(wtts_stats::mean(&counts), 2),
    ]);
    t.row(&[
        "max motifs/gateway".into(),
        fmt(counts.iter().copied().fold(0.0, f64::max), 0),
    ]);
    t.emit(out);
}

/// Characterizes a weekly motif pattern (21 bins = 7 days × 3 eight-hour
/// bins starting 2am): weekend share and evening share of its traffic.
fn weekly_pattern_profile(pattern: &[f64]) -> (f64, f64) {
    let total: f64 = pattern.iter().filter(|v| v.is_finite()).sum();
    if total <= 0.0 {
        return (0.0, 0.0);
    }
    let mut weekend = 0.0;
    let mut evening = 0.0;
    for (i, &v) in pattern.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let day = i / 3; // Monday = 0.
        let bin = i % 3; // 0 = 2-10am, 1 = 10am-6pm, 2 = 6pm-2am.
        if day >= 5 {
            weekend += v;
        }
        if bin == 2 {
            evening += v;
        }
    }
    (weekend / total, evening / total)
}

/// Labels a weekly motif by its dominant time mass.
fn weekly_label(weekend_share: f64, evening_share: f64) -> &'static str {
    if weekend_share > 0.45 {
        "heavy weekend users"
    } else if weekend_share < 0.18 {
        "workdays users"
    } else if evening_share > 0.5 {
        "everyday evening users"
    } else {
        "everyday users"
    }
}

/// Picks up to `n` representative motifs: the highest-support motif of each
/// distinct behavioral label first (the paper's Figures 11 and 14 showcase
/// one motif per behavior), then the next-largest motifs to fill up.
fn representative_motifs(
    set: &MotifSet,
    label_of: impl Fn(&Motif) -> &'static str,
    n: usize,
) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut picked = Vec::new();
    for (k, m) in set.motifs.iter().enumerate() {
        if m.support() < 5 {
            break;
        }
        if seen.insert(label_of(m)) {
            picked.push(k);
            if picked.len() == n {
                return picked;
            }
        }
    }
    for k in 0..set.motifs.len() {
        if picked.len() == n {
            break;
        }
        if !picked.contains(&k) {
            picked.push(k);
        }
    }
    picked
}

/// Representative weekly motifs (distinct behavioral labels).
pub fn weekly_representatives(set: &MotifSet) -> Vec<usize> {
    representative_motifs(
        set,
        |m| {
            let pattern = m.average_pattern(&set.windows);
            let (weekend, evening) = weekly_pattern_profile(&pattern);
            weekly_label(weekend, evening)
        },
        3,
    )
}

/// Representative daily motifs (distinct behavioral labels).
pub fn daily_representatives(set: &MotifSet) -> Vec<usize> {
    representative_motifs(set, |m| daily_label(&m.average_pattern(&set.windows)), 4)
}

/// Figure 11: the weekly motifs of interest.
pub fn fig11(set: &MotifSet, out: Option<&Path>) {
    let mut t = Table::new(
        "Fig 11 - weekly motifs of interest",
        &[
            "motif",
            "support",
            "same-gw share",
            "weekend share",
            "evening share",
            "label",
        ],
    );
    for (idx, &k) in weekly_representatives(set).iter().enumerate() {
        let m = &set.motifs[k];
        let pattern = m.average_pattern(&set.windows);
        let (weekend, evening) = weekly_pattern_profile(&pattern);
        t.row(&[
            format!("motif{}", idx + 1),
            m.support().to_string(),
            pct(m.same_gateway_fraction(&set.refs)),
            pct(weekend),
            pct(evening),
            weekly_label(weekend, evening).to_string(),
        ]);
    }
    t.emit(out);

    // Print the top motif's pattern, day by day.
    if let Some(m) = set.motifs.first() {
        let pattern = m.average_pattern(&set.windows);
        let mut t = Table::new(
            "Fig 11 - top weekly motif average pattern (bytes per 8h bin)",
            &["day", "02-10", "10-18", "18-02"],
        );
        for (d, name) in ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]
            .iter()
            .enumerate()
        {
            t.row(&[
                (*name).to_string(),
                fmt(pattern.get(d * 3).copied().unwrap_or(f64::NAN), 0),
                fmt(pattern.get(d * 3 + 1).copied().unwrap_or(f64::NAN), 0),
                fmt(pattern.get(d * 3 + 2).copied().unwrap_or(f64::NAN), 0),
            ]);
        }
        t.emit(out);
    }
}

/// Characterizes a daily motif pattern (8 three-hour bins from midnight).
fn daily_label(pattern: &[f64]) -> &'static str {
    let total: f64 = pattern.iter().filter(|v| v.is_finite()).sum();
    if total <= 0.0 {
        return "silent";
    }
    let share = |range: std::ops::Range<usize>| -> f64 {
        range
            .filter_map(|i| pattern.get(i))
            .filter(|v| v.is_finite())
            .sum::<f64>()
            / total
    };
    let morning = share(2..4); // 6-12
    let afternoon = share(4..6); // 12-18
    let evening = share(6..8); // 18-24
    if evening > 0.55 {
        if morning > 0.15 {
            "morning and evening users"
        } else {
            "late evening users"
        }
    } else if afternoon > 0.45 {
        "afternoon users"
    } else if morning + afternoon + evening > 0.8 && evening < 0.45 && afternoon < 0.45 {
        "all day users"
    } else if morning > 0.3 && evening > 0.3 {
        "morning and evening users"
    } else {
        "mixed users"
    }
}

/// Figure 14: representative daily motifs.
pub fn fig14(set: &MotifSet, out: Option<&Path>) {
    let mut t = Table::new(
        "Fig 14 - daily motifs of interest",
        &[
            "motif",
            "support",
            "same-gw share",
            "weekend share",
            "label",
        ],
    );
    for (idx, &k) in daily_representatives(set).iter().enumerate() {
        let m = &set.motifs[k];
        let pattern = m.average_pattern(&set.windows);
        t.row(&[
            format!("motif{}", (b'A' + idx as u8) as char),
            m.support().to_string(),
            pct(m.same_gateway_fraction(&set.refs)),
            pct(m.weekend_fraction(&set.refs)),
            daily_label(&pattern).to_string(),
        ]);
    }
    t.emit(out);

    if let Some(m) = set.motifs.first() {
        let pattern = m.average_pattern(&set.windows);
        let mut t = Table::new(
            "Fig 14 - top daily motif average pattern (bytes per 3h bin)",
            &["bin", "bytes"],
        );
        for (i, v) in pattern.iter().enumerate() {
            t.row(&[format!("{:02}-{:02}h", i * 3, i * 3 + 3), fmt(*v, 0)]);
        }
        t.emit(out);
    }
}

/// Figures 12–13 (weekly) and 15–16 (daily): dominant devices per motif —
/// how many per member window, how they intersect the gateway's overall
/// dominants, and their type distribution.
pub fn motif_dominance(
    fleet: &Fleet,
    set: &MotifSet,
    selection: &[usize],
    kind: &str,
    out: Option<&Path>,
) {
    // Member windows grouped by gateway so each gateway renders once.
    let top_motifs: Vec<(usize, &Motif)> = selection
        .iter()
        .enumerate()
        .map(|(pos, &k)| (pos, &set.motifs[k]))
        .collect();
    let mut by_gateway: HashMap<usize, Vec<(usize, usize)>> = HashMap::new(); // gw -> (motif, window idx)
    for (k, m) in &top_motifs {
        for &i in &m.members {
            by_gateway
                .entry(set.refs[i].gateway)
                .or_default()
                .push((*k, i));
        }
    }

    // Per motif: distribution of #dominant per member, overlap with overall,
    // type counts, workday/weekend counts.
    let mut dom_count: Vec<HashMap<usize, usize>> = vec![HashMap::new(); top_motifs.len()];
    let mut overlap: Vec<HashMap<usize, usize>> = vec![HashMap::new(); top_motifs.len()];
    let mut types: Vec<HashMap<DeviceType, usize>> = vec![HashMap::new(); top_motifs.len()];

    for (&gw_id, members) in &by_gateway {
        let gw = fleet.gateway(gw_id);
        let device_series: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
        let total = TimeSeries::sum_all(device_series.iter()).expect("devices");
        // Overall dominants over the first 4 weeks.
        let weeks4 = first_weeks(&total, set.weeks);
        let dev4: Vec<TimeSeries> = device_series
            .iter()
            .map(|d| first_weeks(d, set.weeks))
            .collect();
        let overall: Vec<usize> = dominant_devices(&weeks4, &dev4, 0.6)
            .into_iter()
            .map(|d| d.device)
            .collect();

        for &(k, i) in members {
            let r = set.refs[i];
            // The member's time slot in raw minutes.
            let (start, len) = match r.weekday {
                None => (
                    Minute(r.week * MINUTES_PER_WEEK + set.offset),
                    MINUTES_PER_WEEK as usize,
                ),
                Some(d) => (
                    Minute(
                        r.week * MINUTES_PER_WEEK + d.index() as u32 * MINUTES_PER_DAY + set.offset,
                    ),
                    MINUTES_PER_DAY as usize,
                ),
            };
            let slot_total = total.slice(start, len);
            let slot_devices: Vec<TimeSeries> =
                device_series.iter().map(|d| d.slice(start, len)).collect();
            let dom = dominant_devices(&slot_total, &slot_devices, 0.6);
            *dom_count[k].entry(dom.len().min(4)).or_insert(0) += 1;
            let n_overlap = dom.iter().filter(|d| overall.contains(&d.device)).count();
            *overlap[k].entry(n_overlap.min(3)).or_insert(0) += 1;
            for d in &dom {
                *types[k]
                    .entry(gw.devices[d.device].inferred_type())
                    .or_insert(0) += 1;
            }
        }
    }

    let motif_name = |k: usize| -> String {
        if kind == "weekly" {
            format!("motif{}", k + 1)
        } else {
            format!("motif{}", (b'A' + k as u8) as char)
        }
    };

    let mut t = Table::new(
        &format!("Fig 12a/15a - dominant devices per {kind} motif member"),
        &["motif", "0 dev", "1 dev", "2 dev", "3 dev", "4+ dev"],
    );
    for (k, _) in &top_motifs {
        let get = |n: usize| dom_count[*k].get(&n).copied().unwrap_or(0).to_string();
        t.row(&[motif_name(*k), get(0), get(1), get(2), get(3), get(4)]);
    }
    t.emit(out);

    let mut t = Table::new(
        &format!("Fig 12b/15b - overlap with overall dominants ({kind})"),
        &["motif", "0 common", "1 common", "2 common", "3+ common"],
    );
    for (k, _) in &top_motifs {
        let get = |n: usize| overlap[*k].get(&n).copied().unwrap_or(0).to_string();
        t.row(&[motif_name(*k), get(0), get(1), get(2), get(3)]);
    }
    t.emit(out);

    let mut t = Table::new(
        &format!("Fig 13/16a - dominant device types per {kind} motif"),
        &[
            "motif",
            "portable",
            "fixed",
            "tv",
            "game_console",
            "network_eq",
            "unlabeled",
        ],
    );
    for (k, _) in &top_motifs {
        let get = |ty: DeviceType| types[*k].get(&ty).copied().unwrap_or(0).to_string();
        t.row(&[
            motif_name(*k),
            get(DeviceType::Portable),
            get(DeviceType::Fixed),
            get(DeviceType::SmartTv),
            get(DeviceType::GameConsole),
            get(DeviceType::NetworkEquipment),
            get(DeviceType::Unlabeled),
        ]);
    }
    t.emit(out);

    if kind == "daily" {
        let mut t = Table::new(
            "Fig 16b - workday/weekend split per daily motif",
            &["motif", "workday", "weekend"],
        );
        for (k, m) in &top_motifs {
            let weekend = m.weekend_fraction(&set.refs);
            t.row(&[motif_name(*k), pct(1.0 - weekend), pct(weekend)]);
        }
        t.emit(out);
    }
}

/// Ablation: motif census vs the group-similarity factor (the paper's ¾).
/// Reuses the set's shared index — three discoveries, one sketch build.
pub fn ablation_group_factor(set: &MotifSet, out: Option<&Path>) {
    let mut t = Table::new(
        "Ablation - motif census vs group-similarity factor",
        &["factor", "motifs", "max support", "windows in motifs"],
    );
    for factor in [0.5, 0.75, 1.0] {
        let motifs = discover_motifs_indexed(
            &set.index,
            &MotifConfig {
                group_factor: factor,
                ..MotifConfig::default()
            },
            None,
        );
        let max_support = motifs.first().map(|m| m.support()).unwrap_or(0);
        let covered: usize = motifs.iter().map(|m| m.support()).sum();
        t.row(&[
            fmt(factor, 2),
            motifs.len().to_string(),
            max_support.to_string(),
            covered.to_string(),
        ]);
    }
    t.emit(out);
}

/// §7.2's aside made concrete: "patterns within a particular gateway only
/// ... can also be identified following the proposed methodology". Runs the
/// daily motif search separately inside each gateway and reports how many
/// homes have personal recurring patterns.
pub fn motifs_within_gateways(fleet: &Fleet, out: Option<&Path>) {
    let weeks = fleet.config().weeks.min(4);
    let granularity = Granularity::hours(3);
    let mut gateways_with_motifs = 0usize;
    let mut eligible = 0usize;
    let mut best: Option<(usize, usize, f64)> = None; // (gateway, support, weekend share)
    let mut support_hist: HashMap<usize, usize> = HashMap::new();
    for gw in fleet.iter() {
        let active = first_weeks(&active_total(&gw), weeks);
        if !observed_every_day(&active, weeks) {
            continue;
        }
        eligible += 1;
        let agg = aggregate(&active, granularity, 0);
        let mut refs = Vec::new();
        let mut windows = Vec::new();
        for w in daily_windows(&agg, weeks, 0) {
            refs.push(WindowRef {
                gateway: gw.id,
                week: w.week,
                weekday: w.weekday,
            });
            windows.push(w.series.into_values());
        }
        let motifs = discover_motifs(&windows, &MotifConfig::default());
        if let Some(top) = motifs.first() {
            gateways_with_motifs += 1;
            *support_hist.entry(top.support().min(20)).or_insert(0) += 1;
            if best.is_none_or(|(_, s, _)| top.support() > s) {
                best = Some((gw.id, top.support(), top.weekend_fraction(&refs)));
            }
        }
    }
    let mut t = Table::new(
        "Sec 7.2 - within-gateway daily motifs",
        &["metric", "value"],
    );
    t.row(&["eligible gateways".into(), eligible.to_string()]);
    t.row(&[
        "gateways with personal motifs".into(),
        format!(
            "{gateways_with_motifs} ({})",
            pct(gateways_with_motifs as f64 / eligible.max(1) as f64)
        ),
    ]);
    if let Some((gw, support, weekend)) = best {
        t.row(&[
            "largest personal motif".into(),
            format!("gateway {gw}: {support} days ({} weekend)", pct(weekend)),
        ]);
    }
    t.emit(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn weekly_motifs_small_fleet() {
        let fleet = Fleet::new(FleetConfig::small());
        let set = weekly_motifs(&fleet);
        assert_eq!(set.windows.len(), set.refs.len());
        // Every motif member indexes a valid window.
        for m in &set.motifs {
            for &i in &m.members {
                assert!(i < set.windows.len());
            }
        }
    }

    #[test]
    fn weekly_profile_shares() {
        // All traffic on Saturday evening.
        let mut pattern = vec![0.0; 21];
        pattern[5 * 3 + 2] = 100.0;
        let (weekend, evening) = weekly_pattern_profile(&pattern);
        assert_eq!(weekend, 1.0);
        assert_eq!(evening, 1.0);
        assert_eq!(weekly_label(weekend, evening), "heavy weekend users");
    }

    #[test]
    fn daily_labels() {
        let mut evening = vec![1.0; 8];
        evening[6] = 500.0;
        evening[7] = 500.0;
        assert_eq!(daily_label(&evening), "late evening users");
        let mut afternoon = vec![1.0; 8];
        afternoon[4] = 400.0;
        afternoon[5] = 400.0;
        assert_eq!(daily_label(&afternoon), "afternoon users");
        assert_eq!(daily_label(&[0.0; 8]), "silent");
    }
}
