//! Figure 5 and §6.2: dominant devices per gateway, their types, the
//! Euclidean/volume baselines and the residents correlation.

use crate::data::{first_weeks, observed_every_week};
use crate::report::{fmt, pct, Table};
use std::collections::HashMap;
use std::path::Path;
use wtts_core::dominance::{
    dominant_devices, euclidean_ranking, ranking_agreement, volume_ranking, DominantDevice,
};
use wtts_devid::DeviceType;
use wtts_gwsim::{Fleet, SimGateway};
use wtts_stats::pearson;
use wtts_timeseries::TimeSeries;

/// Per-gateway dominance analysis input: the total and each device's total.
pub fn gateway_series(gw: &SimGateway, weeks: u32) -> (TimeSeries, Vec<TimeSeries>) {
    let devices: Vec<TimeSeries> = gw
        .devices
        .iter()
        .map(|d| first_weeks(&d.total(), weeks))
        .collect();
    let total = TimeSeries::sum_all(devices.iter()).expect("gateway has devices");
    (total, devices)
}

/// Full §6.2 analysis over the fleet.
pub fn fig5(fleet: &Fleet, out: Option<&Path>) {
    let weeks = 4;
    let mut eligible = 0usize;
    // #dominant -> #gateways, for phi = 0.6 and 0.8.
    let mut count_dist: HashMap<usize, usize> = HashMap::new();
    let mut have_dominant_strict = 0usize;
    let mut type_by_rank: HashMap<(usize, DeviceType), usize> = HashMap::new();
    let mut type_totals: HashMap<DeviceType, usize> = HashMap::new();
    let mut total_dominants = 0usize;
    let mut euclidean_agree = 0usize;
    let mut volume_agree = 0usize;
    let mut strict_fixed = 0usize;
    let mut strict_total = 0usize;
    // Survey: (residents, #dominant) over the first 49 eligible gateways.
    let mut survey: Vec<(usize, usize)> = Vec::new();
    let mut residents_cross: HashMap<(usize, usize), usize> = HashMap::new();

    for gw in fleet.iter() {
        let (total, devices) = gateway_series(&gw, weeks);
        if !observed_every_week(&total, weeks) {
            continue;
        }
        eligible += 1;
        let dom = dominant_devices(&total, &devices, 0.6);
        *count_dist.entry(dom.len().min(3)).or_insert(0) += 1;
        total_dominants += dom.len();
        for d in &dom {
            let ty = gw.devices[d.device].inferred_type();
            *type_by_rank.entry((d.rank.min(2), ty)).or_insert(0) += 1;
            *type_totals.entry(ty).or_insert(0) += 1;
        }
        // For the Euclidean baseline a disconnected device contributes zero
        // traffic; leaving its samples missing would shrink its distance by
        // skipping terms and absurdly favor rarely-seen devices.
        let zero_filled: Vec<TimeSeries> = devices
            .iter()
            .map(|d| {
                let mut z = d.clone();
                for v in z.values_mut() {
                    if !v.is_finite() {
                        *v = 0.0;
                    }
                }
                z
            })
            .collect();
        let euc = euclidean_ranking(&total, &zero_filled);
        let vol = volume_ranking(&devices);
        euclidean_agree += ranking_agreement(&dom, &euc);
        volume_agree += ranking_agreement(&dom, &vol);

        let strict = dominant_devices(&total, &devices, 0.8);
        if !strict.is_empty() {
            have_dominant_strict += 1;
        }
        strict_total += strict.len();
        strict_fixed += strict
            .iter()
            .filter(|d| gw.devices[d.device].inferred_type() == DeviceType::Fixed)
            .count();

        if survey.len() < 49 {
            survey.push((gw.residents, dom.len()));
        }
        *residents_cross
            .entry((gw.residents, dom.len().min(3)))
            .or_insert(0) += 1;
    }

    let mut t = Table::new(
        "Fig 5 / Sec 6.2 - dominant devices per gateway (phi=0.6)",
        &["#dominant", "gateways"],
    );
    for k in 0..=3 {
        let label = if k == 3 {
            "3+".to_string()
        } else {
            k.to_string()
        };
        t.row(&[label, count_dist.get(&k).copied().unwrap_or(0).to_string()]);
    }
    t.emit(out);
    println!("{eligible} eligible gateways, {total_dominants} dominant devices in total\n");

    let mut t = Table::new(
        "Fig 5 - dominant device types by rank",
        &["type", "first", "second", "third"],
    );
    for ty in DeviceType::ALL {
        let get = |rank: usize| {
            type_by_rank
                .get(&(rank, ty))
                .copied()
                .unwrap_or(0)
                .to_string()
        };
        t.row(&[ty.label().to_string(), get(0), get(1), get(2)]);
    }
    t.emit(out);

    let mut t = Table::new("Sec 6.2 - dominance type totals", &["type", "count"]);
    for ty in DeviceType::ALL {
        t.row(&[
            ty.label().to_string(),
            type_totals.get(&ty).copied().unwrap_or(0).to_string(),
        ]);
    }
    t.emit(out);

    let mut t = Table::new(
        "Sec 6.2 - agreement with baseline rankings",
        &["baseline", "same-rank dominants", "share"],
    );
    t.row(&[
        "euclidean".into(),
        euclidean_agree.to_string(),
        pct(euclidean_agree as f64 / total_dominants.max(1) as f64),
    ]);
    t.row(&[
        "traffic volume".into(),
        volume_agree.to_string(),
        pct(volume_agree as f64 / total_dominants.max(1) as f64),
    ]);
    t.emit(out);

    let mut t = Table::new("Sec 6.2 - strict dominance (phi=0.8)", &["stat", "value"]);
    t.row(&[
        "gateways with >=1 dominant".into(),
        pct(have_dominant_strict as f64 / eligible.max(1) as f64),
    ]);
    t.row(&[
        "fixed share among dominants".into(),
        pct(strict_fixed as f64 / strict_total.max(1) as f64),
    ]);
    t.emit(out);

    let mut t = Table::new(
        "Sec 6.2 - residents x dominant-device count (all eligible)",
        &["residents", "0 dom", "1 dom", "2 dom", "3+ dom"],
    );
    for r in 1..=4usize {
        let get = |d: usize| {
            residents_cross
                .get(&(r, d))
                .copied()
                .unwrap_or(0)
                .to_string()
        };
        t.row(&[r.to_string(), get(0), get(1), get(2), get(3)]);
    }
    t.emit(out);

    // Residents vs dominant count (survey subset; paper: cor = 0.53 over
    // 1-2 user homes, no overall correlation).
    let all_res: Vec<f64> = survey.iter().map(|&(r, _)| r as f64).collect();
    let all_dom: Vec<f64> = survey.iter().map(|&(_, d)| d as f64).collect();
    let overall = pearson(&all_res, &all_dom);
    let small: Vec<&(usize, usize)> = survey.iter().filter(|&&(r, _)| r <= 2).collect();
    let s_res: Vec<f64> = small.iter().map(|&&(r, _)| r as f64).collect();
    let s_dom: Vec<f64> = small.iter().map(|&&(_, d)| d as f64).collect();
    let small_cor = pearson(&s_res, &s_dom);
    let mut t = Table::new(
        "Sec 6.2 - #dominant devices vs #residents (survey subset)",
        &["population", "n", "pearson", "significant"],
    );
    t.row(&[
        "all homes".into(),
        survey.len().to_string(),
        fmt(overall.value, 2),
        overall.significant(0.05).to_string(),
    ]);
    t.row(&[
        "1-2 resident homes".into(),
        small.len().to_string(),
        fmt(small_cor.value, 2),
        small_cor.significant(0.05).to_string(),
    ]);
    t.emit(out);
}

/// Ablation: how the dominant-device census changes when Definition 1 is
/// replaced by each coefficient alone.
pub fn ablation_similarity(fleet: &Fleet, out: Option<&Path>) {
    use wtts_stats::{kendall, spearman};
    let weeks = 4;
    let mut rows: Vec<(String, usize, usize)> = Vec::new(); // (measure, gateways w/ dominant, total dominants)
    type Measure = fn(&[f64], &[f64]) -> wtts_stats::CorrelationTest;
    let measures: [(&str, Measure); 3] = [
        ("pearson", pearson as Measure),
        ("spearman", spearman as Measure),
        ("kendall", kendall as Measure),
    ];
    let mut max_with = 0usize;
    let mut max_total = 0usize;
    let mut single: Vec<(usize, usize)> = vec![(0, 0); measures.len()];
    let mut eligible = 0usize;
    for gw in fleet.iter() {
        let (total, devices) = gateway_series(&gw, weeks);
        if !observed_every_week(&total, weeks) {
            continue;
        }
        eligible += 1;
        let dom = dominant_devices(&total, &devices, 0.6);
        if !dom.is_empty() {
            max_with += 1;
        }
        max_total += dom.len();
        for (k, (_, f)) in measures.iter().enumerate() {
            let doms: Vec<DominantDevice> = devices
                .iter()
                .enumerate()
                .filter_map(|(i, d)| {
                    let test = f(total.values(), d.values());
                    (test.significant(0.05) && test.value > 0.6).then_some((i, test.value))
                })
                .enumerate()
                .map(|(rank, (device, similarity))| DominantDevice {
                    device,
                    similarity,
                    rank,
                })
                .collect();
            if !doms.is_empty() {
                single[k].0 += 1;
            }
            single[k].1 += doms.len();
        }
    }
    rows.push(("max of three (Def. 1)".into(), max_with, max_total));
    for (k, (name, _)) in measures.iter().enumerate() {
        rows.push(((*name).to_string(), single[k].0, single[k].1));
    }
    let mut t = Table::new(
        "Ablation - similarity measure vs dominant-device census",
        &["measure", "gateways with dominant", "total dominants"],
    );
    for (name, with, total) in rows {
        t.row(&[name, with.to_string(), total.to_string()]);
    }
    t.emit(out);
    println!("{eligible} eligible gateways\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn gateway_series_aligned() {
        let fleet = Fleet::new(FleetConfig::small());
        let gw = fleet.gateway(0);
        let (total, devices) = gateway_series(&gw, 2);
        assert_eq!(devices.len(), gw.devices.len());
        for d in &devices {
            assert_eq!(d.len(), total.len());
        }
        // The sum of device totals equals the gateway total.
        let manual = TimeSeries::sum_all(devices.iter()).unwrap();
        assert_eq!(manual.values()[..100], total.values()[..100]);
    }

    #[test]
    fn fig5_runs_on_small_fleet() {
        let fleet = Fleet::new(FleetConfig::small());
        fig5(&fleet, None);
    }
}
