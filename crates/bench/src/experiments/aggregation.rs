//! Figures 6–8: choosing the best aggregation period for weekly and daily
//! patterns.
//!
//! All three figures are views over two sweep grids: one weekly
//! `(granularity, offset)` grid (fig. 6) and one daily granularity grid
//! (figs. 7 and 8). Each grid is evaluated once through
//! `wtts_core::sweep`, which shares the per-gateway prefix-sum pyramid
//! across candidates and yields Definition-3 scores and Definition-2
//! stationarity verdicts together — the runner no longer re-runs identical
//! per-candidate computations per figure.

use crate::data::{active_total, first_weeks, fleet_map, observed_every_day, observed_every_week};
use crate::report::{fmt, Table};
use std::path::Path;
use wtts_core::sweep::{daily_sweep, weekly_sweep, DailySweep, SweepConfig};
use wtts_gwsim::Fleet;
use wtts_stats::mean;
use wtts_timeseries::{Granularity, TimeSeries};

/// The gateways eligible for weekly analyses, with their active series.
fn weekly_eligible(fleet: &Fleet, weeks: u32) -> Vec<TimeSeries> {
    fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        observed_every_week(&active, weeks).then_some(active)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The gateways eligible for daily analyses, with their active series.
fn daily_eligible(fleet: &Fleet, weeks: u32) -> Vec<TimeSeries> {
    fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        observed_every_day(&active, weeks).then_some(active)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Figure 6: average week-to-week correlation per aggregation granularity,
/// for day starts at midnight and 2am, over all eligible gateways and over
/// the strongly stationary ones.
pub fn fig6(fleet: &Fleet, out: Option<&Path>) {
    let weeks = 4;
    let series = weekly_eligible(fleet, weeks);
    println!(
        "{} gateways eligible for weekly aggregation analysis",
        series.len()
    );

    let offsets = [0u32, 120, 180];
    let mut candidates = Vec::new();
    for &offset in &offsets {
        for &g in Granularity::weekly_candidates() {
            if g.as_minutes() < 60 && offset != 0 {
                continue; // 1-minute binning only evaluated from midnight.
            }
            candidates.push((g, offset));
        }
    }
    // One sweep over the whole offset x granularity grid: every figure row
    // below is a read-out of its cells.
    let sweep = weekly_sweep(&series, weeks, &candidates, &SweepConfig::default(), None);

    for &offset in &offsets {
        let mut t = Table::new(
            &format!(
                "Fig 6 - weekly aggregation curves (day start {:02}:00)",
                offset / 60
            ),
            &[
                "granularity",
                "avg cor (all)",
                "avg cor (stationary)",
                "#stationary",
            ],
        );
        for (k, &(g, o)) in sweep.candidates.iter().enumerate() {
            if o != offset {
                continue;
            }
            let mut all = Vec::new();
            let mut stat = Vec::new();
            for row in &sweep.cells {
                let cell = &row[k];
                let Some(score) = cell.score else {
                    continue;
                };
                all.push(score.mean_correlation);
                if cell.stationarity.is_some_and(|c| c.is_stationary()) {
                    stat.push(score.mean_correlation);
                }
            }
            t.row(&[
                g.to_string(),
                fmt(mean(&all), 3),
                fmt(mean(&stat), 3),
                stat.len().to_string(),
            ]);
        }
        t.emit(out);
    }
}

/// The shared daily analysis behind figures 7 and 8: one sweep of every
/// daily-eligible gateway over the paper's 1–180-minute candidates.
pub struct DailyAnalysis {
    /// Number of gateways that passed the daily eligibility filter.
    pub n_eligible: usize,
    /// The full daily sweep (scores plus per-weekday stationarity).
    pub sweep: DailySweep,
}

/// Runs the daily eligibility filter and the shared candidate sweep once;
/// the experiments runner hands the result to both [`fig7`] and [`fig8`].
pub fn daily_analysis(fleet: &Fleet) -> DailyAnalysis {
    let weeks = 4;
    let series = daily_eligible(fleet, weeks);
    let sweep = daily_sweep(
        &series,
        weeks,
        Granularity::daily_candidates(),
        0,
        &SweepConfig::default(),
        None,
    );
    DailyAnalysis {
        n_eligible: series.len(),
        sweep,
    }
}

/// Looks up a granularity's column in the shared daily sweep.
fn daily_column(daily: &DailyAnalysis, g: Granularity) -> usize {
    daily
        .sweep
        .candidates
        .iter()
        .position(|&c| c == g)
        .expect("figure granularities are paper daily candidates")
}

/// Figure 7: number of strongly stationary gateways per daily aggregation
/// granularity, stacked by how many weekdays are stationary.
pub fn fig7(daily: &DailyAnalysis, out: Option<&Path>) {
    println!("{} gateways eligible for daily analysis", daily.n_eligible);

    let mut t = Table::new(
        "Fig 7 - stationary gateways per daily granularity",
        &[
            "granularity",
            "total",
            "1 day",
            "2 days",
            "3 days",
            "4 days",
            "5+ days",
        ],
    );
    for g in [10u32, 30, 60, 90, 120, 180] {
        let g = Granularity::minutes(g);
        let k = daily_column(daily, g);
        let mut by_days = [0usize; 5];
        for row in &daily.sweep.cells {
            let days = row[k].stationary_weekday_count();
            if days > 0 {
                by_days[(days - 1).min(4)] += 1;
            }
        }
        let total: usize = by_days.iter().sum();
        t.row(&[
            g.to_string(),
            total.to_string(),
            by_days[0].to_string(),
            by_days[1].to_string(),
            by_days[2].to_string(),
            by_days[3].to_string(),
            by_days[4].to_string(),
        ]);
    }
    t.emit(out);
}

/// Figure 8: average same-weekday correlation per daily granularity, for
/// all eligible gateways and for gateways with at least one stationary
/// weekday.
pub fn fig8(daily: &DailyAnalysis, out: Option<&Path>) {
    let mut t = Table::new(
        "Fig 8 - daily aggregation curves",
        &[
            "granularity",
            "avg cor (all)",
            "avg cor (stationary)",
            "#stationary",
        ],
    );
    for &g in Granularity::daily_candidates() {
        let k = daily_column(daily, g);
        let mut all = Vec::new();
        let mut stat = Vec::new();
        for row in &daily.sweep.cells {
            let cell = &row[k];
            let Some(score) = cell.score else {
                continue;
            };
            all.push(score.mean_correlation);
            if cell.stationary_weekday_count() > 0 {
                stat.push(score.mean_correlation);
            }
        }
        t.row(&[
            g.to_string(),
            fmt(mean(&all), 3),
            fmt(mean(&stat), 3),
            stat.len().to_string(),
        ]);
    }
    t.emit(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn weekly_eligibility_filter_applies() {
        let fleet = Fleet::new(FleetConfig::small());
        let eligible = weekly_eligible(&fleet, 2);
        assert!(eligible.len() <= fleet.len());
        for s in &eligible {
            assert!(observed_every_week(s, 2));
        }
    }

    #[test]
    fn daily_analysis_covers_paper_candidates() {
        let fleet = Fleet::new(FleetConfig::small());
        let daily = daily_analysis(&fleet);
        assert_eq!(
            daily.sweep.candidates,
            Granularity::daily_candidates().to_vec()
        );
        assert_eq!(daily.sweep.cells.len(), daily.n_eligible);
        // Every fig-7 granularity must resolve to a sweep column.
        for g in [10u32, 30, 60, 90, 120, 180] {
            let _ = daily_column(&daily, Granularity::minutes(g));
        }
    }
}
