//! Figures 6–8: choosing the best aggregation period for weekly and daily
//! patterns.

use crate::data::{active_total, first_weeks, fleet_map, observed_every_day, observed_every_week};
use crate::report::{fmt, Table};
use std::path::Path;
use wtts_core::aggregation::{
    daily_window_correlation, stationary_weekday_count, weekly_stationarity,
    weekly_window_correlation,
};
use wtts_gwsim::Fleet;
use wtts_stats::mean;
use wtts_timeseries::Granularity;

/// The gateways eligible for weekly analyses, with their active series.
fn weekly_eligible(fleet: &Fleet, weeks: u32) -> Vec<wtts_timeseries::TimeSeries> {
    fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        observed_every_week(&active, weeks).then_some(active)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Figure 6: average week-to-week correlation per aggregation granularity,
/// for day starts at midnight and 2am, over all eligible gateways and over
/// the strongly stationary ones.
pub fn fig6(fleet: &Fleet, out: Option<&Path>) {
    let weeks = 4;
    let series = weekly_eligible(fleet, weeks);
    println!(
        "{} gateways eligible for weekly aggregation analysis",
        series.len()
    );

    for offset in [0u32, 120, 180] {
        let mut t = Table::new(
            &format!(
                "Fig 6 - weekly aggregation curves (day start {:02}:00)",
                offset / 60
            ),
            &[
                "granularity",
                "avg cor (all)",
                "avg cor (stationary)",
                "#stationary",
            ],
        );
        for g in Granularity::weekly_candidates() {
            if g.as_minutes() < 60 && offset != 0 {
                continue; // 1-minute binning only evaluated from midnight.
            }
            let mut all = Vec::new();
            let mut stat = Vec::new();
            for s in &series {
                let Some(score) = weekly_window_correlation(s, weeks, g, offset) else {
                    continue;
                };
                all.push(score.mean_correlation);
                if weekly_stationarity(s, weeks, g, offset).is_some_and(|c| c.is_stationary()) {
                    stat.push(score.mean_correlation);
                }
            }
            t.row(&[
                g.to_string(),
                fmt(mean(&all), 3),
                fmt(mean(&stat), 3),
                stat.len().to_string(),
            ]);
        }
        t.emit(out);
    }
}

/// Figure 7: number of strongly stationary gateways per daily aggregation
/// granularity, stacked by how many weekdays are stationary.
pub fn fig7(fleet: &Fleet, out: Option<&Path>) {
    let weeks = 4;
    let series: Vec<wtts_timeseries::TimeSeries> = fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        observed_every_day(&active, weeks).then_some(active)
    })
    .into_iter()
    .flatten()
    .collect();
    println!("{} gateways eligible for daily analysis", series.len());

    let mut t = Table::new(
        "Fig 7 - stationary gateways per daily granularity",
        &[
            "granularity",
            "total",
            "1 day",
            "2 days",
            "3 days",
            "4 days",
            "5+ days",
        ],
    );
    for g in [10u32, 30, 60, 90, 120, 180] {
        let g = Granularity::minutes(g);
        let mut by_days = [0usize; 5];
        for s in &series {
            let days = stationary_weekday_count(s, weeks, g, 0);
            if days > 0 {
                by_days[(days - 1).min(4)] += 1;
            }
        }
        let total: usize = by_days.iter().sum();
        t.row(&[
            g.to_string(),
            total.to_string(),
            by_days[0].to_string(),
            by_days[1].to_string(),
            by_days[2].to_string(),
            by_days[3].to_string(),
            by_days[4].to_string(),
        ]);
    }
    t.emit(out);
}

/// Figure 8: average same-weekday correlation per daily granularity, for
/// all eligible gateways and for gateways with at least one stationary
/// weekday.
pub fn fig8(fleet: &Fleet, out: Option<&Path>) {
    let weeks = 4;
    let series: Vec<wtts_timeseries::TimeSeries> = fleet_map(fleet, |gw| {
        let active = first_weeks(&active_total(&gw), weeks);
        observed_every_day(&active, weeks).then_some(active)
    })
    .into_iter()
    .flatten()
    .collect();

    let mut t = Table::new(
        "Fig 8 - daily aggregation curves",
        &[
            "granularity",
            "avg cor (all)",
            "avg cor (stationary)",
            "#stationary",
        ],
    );
    for g in Granularity::daily_candidates() {
        let mut all = Vec::new();
        let mut stat = Vec::new();
        for s in &series {
            let Some(score) = daily_window_correlation(s, weeks, g, 0) else {
                continue;
            };
            all.push(score.mean_correlation);
            if stationary_weekday_count(s, weeks, g, 0) > 0 {
                stat.push(score.mean_correlation);
            }
        }
        t.row(&[
            g.to_string(),
            fmt(mean(&all), 3),
            fmt(mean(&stat), 3),
            stat.len().to_string(),
        ]);
    }
    t.emit(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_gwsim::FleetConfig;

    #[test]
    fn weekly_eligibility_filter_applies() {
        let fleet = Fleet::new(FleetConfig::small());
        let eligible = weekly_eligible(&fleet, 2);
        assert!(eligible.len() <= fleet.len());
        for s in &eligible {
            assert!(observed_every_week(s, 2));
        }
    }
}
