//! Experiment harness and benchmark support for the `wtts` workspace.
//!
//! The `experiments` binary (`cargo run -p wtts-bench --release --bin
//! experiments -- <id>`) regenerates every table and figure of the paper on
//! the simulated fleet; this library holds the shared machinery so the
//! Criterion benches and integration tests can drive the same code.

pub mod data;
pub mod experiments;
pub mod report;
