//! Regenerates every table and figure of the paper on the simulated fleet.
//!
//! ```text
//! cargo run -p wtts-bench --release --bin experiments -- all
//! cargo run -p wtts-bench --release --bin experiments -- fig5 fig6
//! cargo run -p wtts-bench --release --bin experiments -- --small fig9
//! ```
//!
//! Output goes to stdout; each table is also written as CSV under
//! `results/` unless `--no-csv` is given.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wtts_bench::experiments::{
    aggregation, applications, background, dominance, lagsearch, measures, motifs, robustness, sax,
    standard,
};
use wtts_gwsim::{Fleet, FleetConfig};

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "fig1",
        "statistical portrait of a typical gateway (KDE, boxplots)",
    ),
    (
        "sec4-dist",
        "Zipf fits and in/out correlation (Section 4.1)",
    ),
    ("fig2", "autocorrelation and cross-correlation of gateways"),
    (
        "lag-search",
        "multi-scale lead/lag discovery across gateway pairs (Sec 4.2)",
    ),
    (
        "sec4-stat",
        "classical stationarity tests and device-count correlation",
    ),
    (
        "fig3",
        "hierarchical clustering of gateways at distance 0.4",
    ),
    (
        "fig4",
        "background threshold tau distribution and device types",
    ),
    (
        "fig5",
        "dominant devices: counts, types, baselines, residents",
    ),
    (
        "fig6",
        "weekly aggregation curves (midnight and 2am starts)",
    ),
    ("fig7", "stationary gateways per daily granularity"),
    ("fig8", "daily aggregation curves"),
    (
        "fig9-10",
        "motif support distributions and per-gateway participation",
    ),
    ("fig11", "weekly motifs of interest"),
    ("fig12-13", "dominant devices of weekly motifs"),
    ("fig14", "daily motifs of interest"),
    ("fig15-16", "dominant devices of daily motifs"),
    (
        "motifs-within",
        "personal (within-gateway) daily motifs (Sec 7.2 aside)",
    ),
    ("sec6-bg", "stationarity gain from background removal"),
    ("sec2-sax", "SAX alphabet pathology on Zipfian traffic"),
    (
        "sec5-measures",
        "measure scorecard: cor vs Euclidean vs DTW (Sec 5)",
    ),
    (
        "sec3-classifier",
        "device classifier validated on the survey subset",
    ),
    (
        "sec4-arima",
        "AR forecasting fails on bursty per-minute traffic",
    ),
    (
        "sec4-seasonal",
        "periodogram: no seasonal component at 1-min binning",
    ),
    (
        "app-maintenance",
        "per-gateway firmware-update window recommendations",
    ),
    (
        "app-troubleshoot",
        "anomaly detection against injected home faults",
    ),
    (
        "robustness",
        "headline statistics across seeds and deployment scenarios",
    ),
    (
        "ablation",
        "design-choice ablations (similarity max, motif factor)",
    ),
];

/// Shared progress state for the heartbeat line: which experiment is
/// running and how many are done, updated by the main loop and printed
/// periodically by a watcher thread so long runs are visibly alive.
struct Heartbeat {
    done: AtomicUsize,
    total: usize,
    current: Mutex<String>,
    stop: AtomicBool,
    started: Instant,
}

impl Heartbeat {
    fn start(total: usize) -> (Arc<Heartbeat>, std::thread::JoinHandle<()>) {
        let hb = Arc::new(Heartbeat {
            done: AtomicUsize::new(0),
            total,
            current: Mutex::new(String::new()),
            stop: AtomicBool::new(false),
            started: Instant::now(),
        });
        let watcher = Arc::clone(&hb);
        let handle = std::thread::spawn(move || {
            // Tick in short sleeps so shutdown is prompt, print every ~15 s.
            let mut last_beat = Instant::now();
            while !watcher.stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                if last_beat.elapsed() < Duration::from_secs(15) {
                    continue;
                }
                last_beat = Instant::now();
                let current = watcher.current.lock().expect("heartbeat lock").clone();
                println!(
                    "[heartbeat] {:.0}s elapsed, {}/{} experiments done, running: {current}",
                    watcher.started.elapsed().as_secs_f64(),
                    watcher.done.load(Ordering::Relaxed),
                    watcher.total,
                );
            }
        });
        (hb, handle)
    }

    fn begin(&self, id: &str) {
        *self.current.lock().expect("heartbeat lock") = id.to_string();
    }

    fn finish_one(&self) {
        self.done.fetch_add(1, Ordering::Relaxed);
    }
}

fn usage() -> ! {
    eprintln!("usage: experiments [--small] [--no-csv] [--seed N] <id>... | all\n");
    eprintln!("experiments:");
    for (id, desc) in EXPERIMENTS {
        eprintln!("  {id:<10} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut small = false;
    let mut csv = true;
    let mut seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--no-csv" => csv = false,
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-h" | "--help" => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|(id, _)| id.to_string()).collect();
    }

    let mut config = if small {
        FleetConfig {
            n_gateways: 24,
            weeks: 4,
            ..FleetConfig::default()
        }
    } else {
        FleetConfig::default()
    };
    if let Some(s) = seed {
        config.seed = s;
    }
    let fleet = Fleet::new(config);
    println!(
        "fleet: {} gateways, {} weeks, seed {:#x}\n",
        fleet.len(),
        fleet.config().weeks,
        fleet.config().seed
    );

    let out_dir: Option<PathBuf> = csv.then(|| Path::new("results").to_path_buf());
    let out = out_dir.as_deref();

    let (heartbeat, heartbeat_handle) = Heartbeat::start(ids.len());
    // Figures 7 and 8 read the same daily sweep; compute it once on first use.
    let mut daily: Option<aggregation::DailyAnalysis> = None;
    // The motif experiments all read the two window families; each set
    // (windows + shared sketch index + motifs) is built once on first use.
    let mut weekly_set: Option<motifs::MotifSet> = None;
    let mut daily_set: Option<motifs::MotifSet> = None;
    for id in &ids {
        let started = Instant::now();
        heartbeat.begin(id);
        println!("==== {id} ====");
        match id.as_str() {
            "fig1" => standard::fig1(&fleet, out),
            "sec4-dist" => standard::sec4_dist(&fleet, out),
            "fig2" => standard::fig2(&fleet, out),
            "lag-search" => lagsearch::lag_search_experiment(&fleet, out),
            "sec4-stat" => standard::sec4_stat(&fleet, out),
            "fig3" => standard::fig3(&fleet, out),
            "fig4" => background::fig4(&fleet, out),
            "fig5" => dominance::fig5(&fleet, out),
            "fig6" => aggregation::fig6(&fleet, out),
            "fig7" => {
                let daily = daily.get_or_insert_with(|| aggregation::daily_analysis(&fleet));
                aggregation::fig7(daily, out);
            }
            "fig8" => {
                let daily = daily.get_or_insert_with(|| aggregation::daily_analysis(&fleet));
                aggregation::fig8(daily, out);
            }
            "fig9-10" => {
                let weekly = weekly_set.get_or_insert_with(|| motifs::weekly_motifs(&fleet));
                motifs::fig9_10(weekly, "weekly", out);
                let daily = daily_set.get_or_insert_with(|| motifs::daily_motifs(&fleet));
                motifs::fig9_10(daily, "daily", out);
            }
            "fig11" => {
                let weekly = weekly_set.get_or_insert_with(|| motifs::weekly_motifs(&fleet));
                motifs::fig11(weekly, out);
            }
            "fig12-13" => {
                let weekly = weekly_set.get_or_insert_with(|| motifs::weekly_motifs(&fleet));
                let sel = motifs::weekly_representatives(weekly);
                motifs::motif_dominance(&fleet, weekly, &sel, "weekly", out);
            }
            "fig14" => {
                let daily = daily_set.get_or_insert_with(|| motifs::daily_motifs(&fleet));
                motifs::fig14(daily, out);
            }
            "fig15-16" => {
                let daily = daily_set.get_or_insert_with(|| motifs::daily_motifs(&fleet));
                let sel = motifs::daily_representatives(daily);
                motifs::motif_dominance(&fleet, daily, &sel, "daily", out);
            }
            "motifs-within" => motifs::motifs_within_gateways(&fleet, out),
            "sec6-bg" => background::sec6_background_gain(&fleet, out),
            "sec4-arima" => applications::sec4_arima(&fleet, out),
            "sec4-seasonal" => applications::sec4_seasonal(&fleet, out),
            "app-maintenance" => applications::app_maintenance(&fleet, out),
            "app-troubleshoot" => applications::app_troubleshoot(&fleet, out),
            "sec2-sax" => sax::sec2_sax(&fleet, out),
            "sec5-measures" => measures::sec5_measures(&fleet, out),
            "sec3-classifier" => measures::sec3_classifier(&fleet, out),
            "robustness" => robustness::robustness(out),
            "ablation" => {
                dominance::ablation_similarity(&fleet, out);
                let weekly = weekly_set.get_or_insert_with(|| motifs::weekly_motifs(&fleet));
                motifs::ablation_group_factor(weekly, out);
            }
            other => {
                eprintln!("unknown experiment: {other}\n");
                usage();
            }
        }
        heartbeat.finish_one();
        println!("[{id} done in {:.1}s]\n", started.elapsed().as_secs_f64());
    }
    heartbeat.stop.store(true, Ordering::Relaxed);
    heartbeat_handle.join().expect("heartbeat thread");
}
