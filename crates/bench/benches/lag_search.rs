//! Benchmark of the multi-scale lag-search engine against the naive
//! reference: for every `(pair, scale)`, re-aggregate both minute-level
//! series from scratch and run a dense [`wtts_stats::ccf`].
//!
//! The engine wins twice. First, aggregation is amortized per *series*
//! (one granularity pyramid each, folded to every scale) instead of per
//! *pair* — the naive path re-bins each series `n − 1` times per scale.
//! Second, with a reporting threshold `φ > 0` the segmented energy bound
//! dismisses most `(scale, lag)` cells before the O(bins) exact fold: the
//! fixture is bursty evening traffic with per-gateway phase shifts, so a
//! lag that misaligns the bursts collapses the Cauchy–Schwarz bound — the
//! regime home-gateway fleets actually present (cf. BENCH_pruning for the
//! pairwise analogue).
//!
//! All timings are single-threaded (`threads = Some(1)`): the reference box
//! exposes one core, and a fixed thread count keeps the committed numbers
//! comparable across machines. The committed baseline is
//! `results/BENCH_lagged.json`.
//!
//! `--smoke` runs a small grid asserting the conservation law
//! `pruned + evaluated == cells` (from both `LagPruneStats` and the obs
//! counters), dense bit-identity against the naive reference and zero
//! false dismissals at φ; `--metrics-json PATH` additionally writes the
//! obs snapshot (used by `scripts/ci.sh`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use std::time::Instant;
use wtts_core::lagsearch::{lag_search, LagCell, LagSearchConfig, LagSearchResult};
use wtts_core::obs::PipelineObs;
use wtts_stats::ccf;
use wtts_timeseries::{aggregate, Granularity, TimeSeries, MINUTES_PER_DAY, MINUTES_PER_WEEK};

const PHI: f64 = 0.85;
const WEEKS: u32 = 2;

/// A deterministic bursty fleet: every gateway concentrates its traffic in
/// a two-hour evening burst, phase-shifted by 75 minutes per gateway, over
/// small pseudo-random background with scattered reporting gaps. Integer
/// values keep the series on the pyramid fast path.
fn fleet(n: usize) -> Vec<TimeSeries> {
    (0..n)
        .map(|g| {
            let shift = (g * 75) % MINUTES_PER_DAY as usize;
            let minutes = (WEEKS * MINUTES_PER_WEEK) as usize;
            let v: Vec<f64> = (0..minutes)
                .map(|m| {
                    if (m * 31 + g * 7) % 509 == 5 {
                        f64::NAN
                    } else {
                        let phase =
                            (m + 14 * MINUTES_PER_DAY as usize - shift) % MINUTES_PER_DAY as usize;
                        let burst = if (1140..1260).contains(&phase) && (m + g) % 3 != 1 {
                            50_000
                        } else {
                            0
                        };
                        (burst + (m * 17 + g * 13) % 97) as f64
                    }
                })
                .collect();
            TimeSeries::per_minute(v)
        })
        .collect()
}

/// Single-thread engine config; `phi = 0` yields the dense grid.
fn config(phi: f64) -> LagSearchConfig {
    LagSearchConfig {
        scales: vec![
            Granularity::minutes(15),
            Granularity::minutes(30),
            Granularity::hours(1),
        ],
        max_lag_bins: 16,
        phi,
        // Default block width ~ the burst width at the finest scale, so a
        // misaligned burst lands in few blocks and the bound sees mostly
        // background energy on the other side.
        threads: Some(1),
        ..LagSearchConfig::default()
    }
}

/// The naive reference: per `(pair, scale)`, aggregate both minute-level
/// series from scratch and run the dense CCF.
fn naive_grid(series: &[TimeSeries], cfg: &LagSearchConfig) -> Vec<Vec<Vec<f64>>> {
    let mut grid = Vec::new();
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            let mut row = Vec::new();
            for &g in &cfg.scales {
                let a = aggregate(&series[i], g, cfg.offset_minutes);
                let b = aggregate(&series[j], g, cfg.offset_minutes);
                row.push(
                    ccf(a.values(), b.values(), cfg.max_lag_bins)
                        .expect("the bursty fixture is never degenerate"),
                );
            }
            grid.push(row);
        }
    }
    grid
}

/// Zero false dismissals, bit for bit: every exact cell must equal the
/// naive reference bitwise, and every pruned cell must be `< φ` there.
fn assert_grid_matches(result: &LagSearchResult, reference: &[Vec<Vec<f64>>], phi: f64) {
    assert_eq!(result.grid.len(), reference.len());
    for (p, row) in reference.iter().enumerate() {
        for (c, cells_ref) in row.iter().enumerate() {
            let cells = result.grid[p][c]
                .cells
                .as_ref()
                .expect("the bursty fixture is never degenerate");
            assert_eq!(cells.len(), cells_ref.len());
            for (idx, (cell, &want)) in cells.iter().zip(cells_ref).enumerate() {
                match *cell {
                    LagCell::Exact { value, .. } => assert_eq!(
                        value.to_bits(),
                        want.to_bits(),
                        "pair {p} scale {c} idx {idx} differs from the naive reference"
                    ),
                    LagCell::Pruned => assert!(
                        want < phi,
                        "pair {p} scale {c} idx {idx} pruned but reference is {want} >= {phi}"
                    ),
                }
            }
        }
    }
}

fn bench_lag_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("lag_search");
    group.sample_size(10);
    for n in [8usize, 16] {
        let series = fleet(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive_grid(black_box(&series), &config(PHI)))
        });
        group.bench_with_input(BenchmarkId::new("engine", n), &n, |b, _| {
            b.iter(|| lag_search(black_box(&series), &config(PHI), None))
        });
    }
    group.finish();
}

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

struct SizeRow {
    n: usize,
    pairs: usize,
    cells_total: u64,
    cells_evaluated: u64,
    prune_rate: f64,
    naive_ms: f64,
    engine_ms: f64,
    engine_dense_ms: f64,
}

/// Verifies dense bit-identity and pruned zero-false-dismissal at every
/// size, times both paths and writes the JSON baseline the repo commits
/// under `results/`.
fn write_baseline() {
    let sizes = [8usize, 16, 24];
    let mut rows: Vec<SizeRow> = Vec::new();
    let mut speedup = f64::NAN;
    for &n in &sizes {
        let series = fleet(n);
        let reference = naive_grid(&series, &config(PHI));

        let dense = lag_search(&series, &config(0.0), None);
        assert_eq!(dense.stats.pruned(), 0, "phi = 0 must evaluate every cell");
        assert_grid_matches(&dense, &reference, f64::INFINITY);

        let pruned = lag_search(&series, &config(PHI), None);
        assert!(pruned.stats.conserved(), "cell books must balance");
        assert_grid_matches(&pruned, &reference, PHI);

        let naive_ms = median_ms(3, || {
            black_box(naive_grid(black_box(&series), &config(PHI)));
        });
        let engine_ms = median_ms(3, || {
            black_box(lag_search(black_box(&series), &config(PHI), None));
        });
        let engine_dense_ms = median_ms(3, || {
            black_box(lag_search(black_box(&series), &config(0.0), None));
        });

        let row = SizeRow {
            n,
            pairs: pruned.pairs.len(),
            cells_total: pruned.stats.cells_total,
            cells_evaluated: pruned.stats.evaluated,
            prune_rate: pruned.stats.prune_rate(),
            naive_ms,
            engine_ms,
            engine_dense_ms,
        };
        if n == *sizes.last().expect("sizes nonempty") {
            speedup = row.naive_ms / row.engine_ms;
        }
        println!(
            "n = {n}: naive {:.1} ms, engine {:.1} ms (dense {:.1} ms), {} of {} cells evaluated (prune rate {:.3})",
            row.naive_ms,
            row.engine_ms,
            row.engine_dense_ms,
            row.cells_evaluated,
            row.cells_total,
            row.prune_rate,
        );
        rows.push(row);
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"pairs\": {}, \"cells_total\": {}, \"cells_evaluated\": {}, \"prune_rate\": {:.4}, \"naive_ms\": {:.3}, \"engine_ms\": {:.3}, \"engine_dense_ms\": {:.3}, \"bit_identical\": true}}",
                r.n,
                r.pairs,
                r.cells_total,
                r.cells_evaluated,
                r.prune_rate,
                r.naive_ms,
                r.engine_ms,
                r.engine_dense_ms,
            )
        })
        .collect();
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n\"bench\": \"lag_search\",\n\"baseline\": \"per (pair, scale): fresh aggregation of both series + dense ccf\",\n\"phi\": {PHI},\n\"weeks\": {WEEKS},\n\"scales_minutes\": [15, 30, 60],\n\"max_lag_bins\": 16,\n\"threads\": 1,\n\"available_parallelism\": {available},\n\"sizes\": [\n{}\n],\n\"speedup_single_thread\": {:.2},\n\"bit_identical\": true\n}}\n",
        entries.join(",\n"),
        speedup,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_lagged.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI smoke: a small grid with observability on — conservation (stats and
/// obs counters), dense bit-identity, zero false dismissals at φ and a
/// non-trivial prune rate asserted. `--metrics-json PATH` writes the obs
/// snapshot.
fn smoke(metrics_json: Option<&str>) {
    let series = fleet(8);
    let start = Instant::now();

    let obs = PipelineObs::new();
    let pruned = lag_search(&series, &config(PHI), Some(&obs));
    let reference = naive_grid(&series, &config(PHI));
    assert_grid_matches(&pruned, &reference, PHI);

    let dense = lag_search(&series, &config(0.0), None);
    assert_grid_matches(&dense, &reference, f64::INFINITY);

    let stats = pruned.stats;
    assert!(stats.conserved(), "cell books must balance");
    assert!(
        stats.prune_rate() > 0.3,
        "prune rate {:.3} too low for the bursty fixture at phi = {PHI}",
        stats.prune_rate()
    );

    let snapshot = obs.snapshot();
    assert!(snapshot.conserved(), "stage books must balance");
    assert!(snapshot.quiescent(), "no span may be left open");
    assert_eq!(snapshot.counter("lag_cells_total"), stats.cells_total);
    assert_eq!(
        snapshot.counter("lag_cells_pruned_degenerate")
            + snapshot.counter("lag_cells_pruned_sketch")
            + snapshot.counter("lag_cells_pruned_energy")
            + snapshot.counter("lag_cells_evaluated"),
        snapshot.counter("lag_cells_total"),
        "obs cell books must balance"
    );

    println!(
        "lag_search smoke: {} series, {} of {} cells evaluated (prune rate {:.3}), bit-identical in {:.2?}",
        series.len(),
        stats.evaluated,
        stats.cells_total,
        stats.prune_rate(),
        start.elapsed(),
    );
    if let Some(path) = metrics_json {
        std::fs::write(path, snapshot.to_json()).expect("write metrics json");
        println!("metrics written to {path}");
    }
}

criterion_group!(benches, bench_lag_search);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let metrics_json = args
            .iter()
            .position(|a| a == "--metrics-json")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str);
        smoke(metrics_json);
        return;
    }
    benches();
    write_baseline();
}
