//! Benchmarks of the correlation coefficients and the Definition 1
//! similarity measure, over series lengths matching the paper's window
//! sizes (8 bins for daily, 21 for weekly, 10 080 for raw per-minute
//! weeks).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_core::similarity::correlation_similarity;
use wtts_stats::{kendall, pearson, spearman};

fn series(n: usize, phase: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as u64;
            (x.wrapping_mul(6364136223846793005).wrapping_add(phase) >> 33) as f64
                + (i % 97) as f64 * 1e3
        })
        .collect()
}

fn bench_coefficients(c: &mut Criterion) {
    let mut group = c.benchmark_group("coefficients");
    for n in [8usize, 21, 56, 1440, 10_080] {
        let x = series(n, 1);
        let y = series(n, 2);
        group.bench_with_input(BenchmarkId::new("pearson", n), &n, |b, _| {
            b.iter(|| pearson(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("spearman", n), &n, |b, _| {
            b.iter(|| spearman(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("kendall", n), &n, |b, _| {
            b.iter(|| kendall(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

fn bench_definition1(c: &mut Criterion) {
    let mut group = c.benchmark_group("definition1");
    for n in [21usize, 1440, 10_080] {
        let x = series(n, 3);
        let y = series(n, 4);
        group.bench_with_input(BenchmarkId::new("cor_max_of_three", n), &n, |b, _| {
            b.iter(|| correlation_similarity(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

/// The O(n log n) Kendall against the naive O(n^2) definition — the ablation
/// DESIGN.md calls out.
fn bench_kendall_vs_naive(c: &mut Criterion) {
    fn naive_tau(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let mut s = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = (x[i] - x[j]) * (y[i] - y[j]);
                s += if d > 0.0 {
                    1
                } else if d < 0.0 {
                    -1
                } else {
                    0
                };
            }
        }
        s as f64 / (n * (n - 1) / 2) as f64
    }

    let mut group = c.benchmark_group("kendall_algorithms");
    for n in [64usize, 256, 1024] {
        let x = series(n, 5);
        let y = series(n, 6);
        group.bench_with_input(BenchmarkId::new("knight_nlogn", n), &n, |b, _| {
            b.iter(|| kendall(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("naive_n2", n), &n, |b, _| {
            b.iter(|| naive_tau(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coefficients,
    bench_definition1,
    bench_kendall_vs_naive
);
criterion_main!(benches);
