//! Throughput benchmark of the sharded fleet ingest pipeline: a simulated
//! 200-gateway week of raw counter reports, pushed through a chaos channel
//! (loss, duplication, reordering) and ingested at 1 / 2 / 4 shards.
//!
//! Besides the interactive Criterion output, a run refreshes the committed
//! baseline at `results/BENCH_ingest.json` (median wall time and
//! reports/second per shard count, plus the accounting invariant check).
//! Shard scaling is real only when worker threads get their own cores; the
//! baseline records `available_parallelism` so numbers from a one-core
//! container are read for what they are.
//!
//! `--smoke` runs a fast single-shard pass over a small fleet and asserts
//! the conservation law, without touching the committed baseline (used by
//! `scripts/ci.sh`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use wtts_core::ingest::{IngestConfig, IngestPipeline, IngestReport, IngestSummary};
use wtts_gwsim::{gateway_reports, ChannelConfig, Fleet, FleetConfig, TaggedReport};

const FLEET_GATEWAYS: usize = 200;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn envelope(t: &TaggedReport) -> IngestReport {
    IngestReport {
        gateway: t.gateway as u64,
        device: t.device as u32,
        at: t.report.at,
        cum_in: t.report.cum_in,
        cum_out: t.report.cum_out,
    }
}

/// One simulated fleet week through a channel with everything wrong at
/// once, so the pipeline's degradation paths are part of the hot loop.
fn fleet_reports(n_gateways: usize) -> Vec<IngestReport> {
    let channel = ChannelConfig {
        loss: 0.02,
        duplication: 0.01,
        reorder: 0.01,
    };
    let fleet = Fleet::new(FleetConfig {
        n_gateways,
        weeks: 1,
        ..FleetConfig::default()
    });
    let mut out = Vec::new();
    for id in 0..n_gateways {
        let gw = fleet.gateway(id);
        let mut rng = SmallRng::seed_from_u64(0xBE7C4 + id as u64);
        out.extend(gateway_reports(&gw, channel, &mut rng).iter().map(envelope));
    }
    out
}

fn config(shards: usize) -> IngestConfig {
    IngestConfig {
        shards,
        ..IngestConfig::default()
    }
}

fn run(reports: &[IngestReport], shards: usize) -> IngestSummary {
    let pipeline = IngestPipeline::new(config(shards), Vec::new());
    let summary = pipeline.run(reports.iter().copied());
    assert!(
        summary.metrics.fully_accounted(),
        "accounting violated at {shards} shards: ingested {} + dropped {} != offered {}",
        summary.metrics.ingested,
        summary.metrics.dropped(),
        summary.metrics.offered
    );
    summary
}

fn bench_ingest(c: &mut Criterion) {
    let reports = fleet_reports(FLEET_GATEWAYS);
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run(black_box(&reports), shards))
        });
    }
    group.finish();
}

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Re-times every shard count and writes the JSON baseline the repo
/// commits under `results/`.
fn write_baseline() {
    let reports = fleet_reports(FLEET_GATEWAYS);
    let offered = reports.len();
    let reference = run(&reports, 1);
    let mut entries = Vec::new();
    let mut single = f64::NAN;
    for shards in SHARD_COUNTS {
        let t = median_ms(5, || {
            black_box(run(black_box(&reports), shards));
        });
        if shards == 1 {
            single = t;
        }
        let rps = offered as f64 / (t / 1e3);
        entries.push(format!(
            "    {{\n      \"shards\": {shards},\n      \"median_ms\": {t:.3},\n      \"reports_per_sec\": {rps:.0},\n      \"speedup_vs_1_shard\": {:.2}\n    }}",
            single / t,
        ));
    }
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let m = &reference.metrics;
    let json = format!(
        "{{\n\"bench\": \"ingest\",\n\"gateways\": {FLEET_GATEWAYS},\n\"weeks\": 1,\n\"offered_reports\": {offered},\n\"ingested\": {},\n\"dropped_late\": {},\n\"dropped_duplicate\": {},\n\"dropped_future_jump\": {},\n\"reset_spanning_gaps\": {},\n\"windows_sealed\": {},\n\"fully_accounted\": {},\n\"available_parallelism\": {available},\n\"shard_runs\": [\n{}\n]\n}}\n",
        m.ingested,
        m.dropped_late,
        m.dropped_duplicate,
        m.dropped_future_jump,
        m.reset_spanning_gaps,
        m.windows_sealed,
        m.fully_accounted(),
        entries.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_ingest.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI smoke: a small fleet at one shard, conservation law asserted, no
/// baseline rewrite.
fn smoke() {
    let reports = fleet_reports(8);
    let start = Instant::now();
    let summary = run(&reports, 1);
    let elapsed = start.elapsed();
    println!(
        "ingest smoke: {} reports, {} ingested, {} dropped, {} windows sealed in {elapsed:.2?}",
        summary.metrics.offered,
        summary.metrics.ingested,
        summary.metrics.dropped(),
        summary.metrics.windows_sealed,
    );
    assert!(summary.metrics.offered > 0);
    assert!(summary.metrics.windows_sealed > 0);
}

criterion_group!(benches, bench_ingest);

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
    write_baseline();
}
