//! Benchmarks of the baseline distance measures the paper compares against:
//! Euclidean distance, z-normalization and DTW (full and banded).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_stats::{dtw, dtw_banded, euclidean, z_normalize};

fn series(n: usize, phase: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(phase)
                >> 40) as f64
        })
        .collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances");
    for n in [56usize, 336, 1440] {
        let x = series(n, 1);
        let y = series(n, 2);
        group.bench_with_input(BenchmarkId::new("euclidean", n), &n, |b, _| {
            b.iter(|| euclidean(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("z_normalize", n), &n, |b, _| {
            b.iter(|| z_normalize(black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("dtw_full", n), &n, |b, _| {
            b.iter(|| dtw(black_box(&x), black_box(&y)))
        });
        group.bench_with_input(BenchmarkId::new("dtw_band16", n), &n, |b, _| {
            b.iter(|| dtw_banded(black_box(&x), black_box(&y), 16))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
