//! Benchmarks of motif discovery (Definition 5) as the window count grows —
//! the dominant cost is the pairwise similarity matrix.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_core::motif::{discover_motifs, MotifConfig};

/// Synthetic daily windows: a few behavioral clusters plus noise, 8 bins
/// each like the paper's 3-hour daily binning.
fn windows(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|k| {
            let cluster = k % 4;
            (0..8)
                .map(|b| {
                    let active = match cluster {
                        0 => (6..8).contains(&b),
                        1 => (4..6).contains(&b),
                        2 => (2..4).contains(&b),
                        _ => ((k * 7 + b) % 3) == 0,
                    };
                    if active {
                        1_000.0 + ((k * 13 + b * 7) % 50) as f64
                    } else {
                        ((k * 31 + b * 11) % 20) as f64
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("motif_discovery");
    group.sample_size(10);
    for n in [100usize, 400, 1000] {
        let w = windows(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| discover_motifs(black_box(&w), &MotifConfig::default()))
        });
    }
    group.finish();
}

/// Ablation: the group-similarity factor's effect on runtime.
fn bench_group_factor(c: &mut Criterion) {
    let w = windows(400);
    let mut group = c.benchmark_group("motif_group_factor");
    group.sample_size(10);
    for factor in [0.5f64, 0.75, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(factor),
            &factor,
            |b, &factor| {
                let config = MotifConfig {
                    group_factor: factor,
                    ..MotifConfig::default()
                };
                b.iter(|| discover_motifs(black_box(&w), &config))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_group_factor);
criterion_main!(benches);
