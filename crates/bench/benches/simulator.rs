//! Benchmarks of trace generation: how fast the substrate can render
//! gateways (the experiments regenerate the fleet on every run).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_gwsim::{generate_gateway, FleetConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_generation");
    group.sample_size(10);
    for weeks in [1u32, 4, 6] {
        let config = FleetConfig {
            n_gateways: 1,
            weeks,
            ..FleetConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(weeks), &weeks, |b, _| {
            let mut id = 0usize;
            b.iter(|| {
                id = (id + 1) % 64;
                generate_gateway(black_box(&config), id)
            })
        });
    }
    group.finish();
}

fn bench_aggregate_total(c: &mut Criterion) {
    let config = FleetConfig {
        n_gateways: 1,
        weeks: 4,
        ..FleetConfig::default()
    };
    let gw = generate_gateway(&config, 0);
    c.bench_function("aggregate_total_4w", |b| {
        b.iter(|| black_box(&gw).aggregate_total())
    });
}

criterion_group!(benches, bench_generation, bench_aggregate_total);
criterion_main!(benches);
