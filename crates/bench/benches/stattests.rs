//! Benchmarks of the statistical tests: two-sample KS, KPSS and ADF, at the
//! sample sizes the experiments use (weekly windows of binned and raw
//! traffic).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_stats::{adf_test, kpss_test, ks_two_sample};

fn noisy(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        })
        .collect()
}

fn bench_ks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ks_two_sample");
    for n in [56usize, 1440, 10_080] {
        let x = noisy(n, 7);
        let y = noisy(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ks_two_sample(black_box(&x), black_box(&y)))
        });
    }
    group.finish();
}

fn bench_stationarity_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("classical_stationarity");
    for n in [1440usize, 10_080] {
        let x = noisy(n, 9);
        group.bench_with_input(BenchmarkId::new("kpss", n), &n, |b, _| {
            b.iter(|| kpss_test(black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("adf_lag4", n), &n, |b, _| {
            b.iter(|| adf_test(black_box(&x), Some(4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ks, bench_stationarity_tests);
criterion_main!(benches);
