//! Benchmarks of the batch pairwise-correlation engine against the naive
//! per-pair sweep, over fleet sizes bracketing the paper's 196 gateways
//! (50 / 200 / 500 series of one weekly window at 3-hour binning).
//!
//! Besides the interactive Criterion output, a run refreshes the committed
//! baseline at `results/BENCH_pairwise.json` (medians in milliseconds).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use std::time::Instant;
use wtts_core::engine::{cor_matrix, profile_series, CorMatrixConfig};
use wtts_core::similarity::cor;

/// One weekly window at 3-hour binning.
const SERIES_LEN: usize = 56;
const FLEET_SIZES: [usize; 3] = [50, 200, 500];

/// Deterministic traffic-shaped series: evening-heavy base pattern, a hashed
/// wobble, and sparse NaN holes so both matrix code paths are exercised.
fn series_set(n: usize, len: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|s| {
            (0..len)
                .map(|t| {
                    if (t * 31 + s * 7) % 83 == 0 {
                        return f64::NAN;
                    }
                    let bin_of_day = t % 8;
                    let base = if bin_of_day >= 6 { 4_000.0 } else { 50.0 };
                    let h = (t as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(s as u64)
                        >> 33;
                    base * (1.0 + (s % 7) as f64 * 0.1) + (h % 997) as f64
                })
                .collect()
        })
        .collect()
}

/// The baseline: one `cor()` call per pair, upper triangle only.
fn per_pair_sweep(series: &[Vec<f64>]) -> Vec<f32> {
    let n = series.len();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push(cor(&series[i], &series[j]) as f32);
        }
    }
    out
}

fn thread_counts() -> Vec<usize> {
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&available) {
        counts.push(available);
    }
    counts
}

fn engine_config(threads: usize) -> CorMatrixConfig {
    CorMatrixConfig {
        threads: Some(threads),
        ..CorMatrixConfig::default()
    }
}

fn bench_pairwise_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_matrix");
    group.sample_size(10);
    for n in FLEET_SIZES {
        let series = series_set(n, SERIES_LEN);
        group.bench_with_input(BenchmarkId::new("per_pair_cor", n), &n, |b, _| {
            b.iter(|| per_pair_sweep(black_box(&series)))
        });
        for threads in thread_counts() {
            let config = engine_config(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("engine_t{threads}"), n),
                &n,
                |b, _| b.iter(|| cor_matrix(&profile_series(black_box(&series)), &config)),
            );
        }
    }
    group.finish();
}

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Re-times every configuration and writes the JSON baseline the repo
/// commits under `results/`.
fn write_baseline() {
    let mut cases = Vec::new();
    for n in FLEET_SIZES {
        let series = series_set(n, SERIES_LEN);
        let samples = if n >= 500 { 3 } else { 9 };
        let per_pair = median_ms(samples, || {
            black_box(per_pair_sweep(black_box(&series)));
        });
        let mut engine_entries = Vec::new();
        let mut single = f64::NAN;
        for threads in thread_counts() {
            let config = engine_config(threads);
            let t = median_ms(samples, || {
                black_box(cor_matrix(&profile_series(black_box(&series)), &config));
            });
            if threads == 1 {
                single = t;
            }
            engine_entries.push(format!("      \"{threads}\": {t:.3}"));
        }
        cases.push(format!(
            "  {{\n    \"n_series\": {n},\n    \"n_pairs\": {},\n    \"per_pair_ms\": {per_pair:.3},\n    \"engine_ms_by_threads\": {{\n{}\n    }},\n    \"speedup_single_thread\": {:.2}\n  }}",
            n * (n - 1) / 2,
            engine_entries.join(",\n"),
            per_pair / single,
        ));
    }
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n\"bench\": \"pairwise_matrix\",\n\"series_len\": {SERIES_LEN},\n\"available_parallelism\": {available},\n\"cases\": [\n{}\n]\n}}\n",
        cases.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_pairwise.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_pairwise_matrix);

fn main() {
    benches();
    write_baseline();
}
