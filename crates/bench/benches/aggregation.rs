//! Benchmarks of time aggregation and the Definition 3 granularity sweep on
//! one gateway's per-minute traffic.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_core::aggregation::{weekly_stationarity, weekly_window_correlation};
use wtts_gwsim::{generate_gateway, FleetConfig};
use wtts_timeseries::{aggregate, Granularity};

fn bench_binning(c: &mut Criterion) {
    let config = FleetConfig {
        n_gateways: 1,
        weeks: 4,
        ..FleetConfig::default()
    };
    let total = generate_gateway(&config, 0).aggregate_total();
    let mut group = c.benchmark_group("binning");
    for g in [1u32, 30, 180, 480] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| aggregate(black_box(&total), Granularity::minutes(g), 0))
        });
    }
    group.finish();
}

fn bench_granularity_sweep(c: &mut Criterion) {
    let config = FleetConfig {
        n_gateways: 1,
        weeks: 4,
        ..FleetConfig::default()
    };
    let total = generate_gateway(&config, 0).aggregate_total();
    let mut group = c.benchmark_group("definition3");
    group.sample_size(10);
    group.bench_function("weekly_correlation_8h", |b| {
        b.iter(|| weekly_window_correlation(black_box(&total), 4, Granularity::hours(8), 120))
    });
    group.bench_function("weekly_stationarity_8h", |b| {
        b.iter(|| weekly_stationarity(black_box(&total), 4, Granularity::hours(8), 120))
    });
    group.bench_function("full_weekly_sweep", |b| {
        b.iter(|| {
            for &g in Granularity::weekly_candidates() {
                black_box(weekly_window_correlation(&total, 4, g, 0));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_binning, bench_granularity_sweep);
criterion_main!(benches);
