//! Per-kernel benchmark of the `wtts_stats::kernels` layer against the
//! loops it replaced, frozen verbatim in this file as baselines:
//!
//! * **pearson_moments** — the batched multi-lag CCF moment fold
//!   (`dot_lags_batch`, four independent accumulator chains per sweep)
//!   against the pre-kernel per-lag serial fold from `ccf_cell_counted`.
//! * **rank_gather** — the full `rank_series` transform, whose hot lane is
//!   the small-domain counting sort (`rank_small_domain`: integral traffic
//!   values rank in O(n + range) with four scatter streams), against the
//!   old index sort whose every comparison chased two indices through the
//!   value array; the comparison-sort fallback, the branchless order filter
//!   and the gather-once tie-run walk are asserted bit-identical alongside.
//! * **kendall_inversions** — the inversion count (`count_inversions`,
//!   whose small-domain lane is a Fenwick prefix-count over value buckets
//!   plus a stable counting sort, and whose general lane is the
//!   insertion-base, skip-merge, ping-pong merge) against the old width-1
//!   bottom-up merge that copied back after every level.
//! * **ks_sup_scan** — the integer-gated KS sup-scan (`f64` gap evaluated
//!   only at weak records) against the classic two-divisions-per-step scan
//!   (`ks_sup_scan_reference`, which is that old loop, kept in the crate as
//!   the large-`n` fallback).
//!
//! Every kernel is asserted bit-identical to its frozen baseline on the
//! bench inputs **before** any timing. Workloads run at the paper's two
//! natural window lengths: one day (1440 minute bins) and one week (10080).
//!
//! Besides the interactive Criterion output, a run refreshes the committed
//! baseline at `results/BENCH_kernels.json` (median wall times and the
//! per-kernel single-thread speedups, gated in CI by
//! `scripts/perf_gate.py` against `results/PERF_BUDGET.json`).
//!
//! `--smoke` asserts bit-identity on both windows without touching the
//! committed baseline (used by `scripts/ci.sh`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wtts_stats::correlation::KendallTies;
use wtts_stats::kernels::{
    count_inversions, dot_lags_batch, filter_order_into, ks_sup_scan, ks_sup_scan_reference,
    order_stats_gather, ranks_from_sorted_pairs, stable_value_sort, sxy_fold, sxy_fold2,
};
use wtts_stats::rank_series;

/// The paper's two natural window lengths: one day and one week of minutes.
const WINDOWS: [usize; 2] = [1440, 10080];

/// Lag range of the batched CCF fold (the lag-search default is ±L around
/// zero; ±64 keeps the per-window work representative of one row).
const LAG_SPAN: i64 = 64;

// ---------------------------------------------------------------------------
// Frozen pre-kernel baselines (copied verbatim from the code they replaced)
// ---------------------------------------------------------------------------

/// Old `ccf_cell_counted` numerator: one serial product fold per lag.
fn dot_baseline(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut s = 0.0;
    for i in 0..n {
        s += x[i] * y[i];
    }
    s
}

/// Old per-lag loop body: slice the overlap for one lag, then fold.
fn lag_cells_baseline(a: &[f64], b: &[f64], lags: &[i64], out: &mut Vec<f64>) {
    let n = a.len();
    out.clear();
    for &lag in lags {
        let k = lag.unsigned_abs() as usize;
        out.push(if lag >= 0 {
            dot_baseline(&a[k..], &b[..n - k])
        } else {
            dot_baseline(&a[..n - k], &b[k..])
        });
    }
}

/// Old `rank::rank_series`: up-front finite scan, index sort with
/// value-chasing comparisons, then the tie walk re-indexing the value
/// array through the order. (The kernel path skips the scan when the
/// small-domain probe already certifies finiteness.)
fn rank_series_baseline(xs: &[f64]) -> (Vec<usize>, Vec<f64>, Vec<usize>) {
    assert!(
        xs.iter().all(|x| x.is_finite()),
        "mid_ranks requires finite inputs"
    );
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values compare"));
    let mut ranks = vec![0.0; n];
    let mut ties = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        if j > i {
            ties.push(j - i + 1);
        }
        i = j + 1;
    }
    (order, ranks, ties)
}

/// Old `corprofile::filter_order`: branchy push per surviving index.
fn filter_order_baseline(order: &[u32], pos: &[u32], out: &mut Vec<u32>) {
    out.clear();
    for &k in order {
        let g = pos[k as usize];
        if g != u32::MAX {
            out.push(g);
        }
    }
}

/// Old `corprofile::order_stats`: Option-driven walk that indexes the value
/// array through the sort order twice per comparison.
fn order_stats_baseline(
    sorted: &[u32],
    values: &[f64],
    mut ranks: Option<&mut Vec<f64>>,
    mut runs: Option<&mut Vec<(u32, u32)>>,
) -> KendallTies {
    let m = sorted.len();
    if let Some(ranks) = ranks.as_deref_mut() {
        ranks.clear();
        ranks.resize(m, 0.0);
    }
    if let Some(runs) = runs.as_deref_mut() {
        runs.clear();
    }
    let mut ties = KendallTies {
        n_tied_pairs: 0,
        vt: 0.0,
        sum_t2: 0.0,
        sum_t3: 0.0,
    };
    let mut i = 0;
    while i < m {
        let mut j = i;
        while j + 1 < m && values[sorted[j + 1] as usize] == values[sorted[i] as usize] {
            j += 1;
        }
        if let Some(ranks) = ranks.as_deref_mut() {
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &g in &sorted[i..=j] {
                ranks[g as usize] = avg;
            }
        }
        if j > i {
            let t = (j - i + 1) as u64;
            let tf = t as f64;
            ties.n_tied_pairs += t * (t - 1) / 2;
            ties.vt += tf * (tf - 1.0) * (2.0 * tf + 5.0);
            ties.sum_t2 += tf * (tf - 1.0);
            ties.sum_t3 += tf * (tf - 1.0) * (tf - 2.0);
            if let Some(runs) = runs.as_deref_mut() {
                runs.push((i as u32, (j - i + 1) as u32));
            }
        }
        i = j + 1;
    }
    ties
}

/// Old `correlation::merge_count`: width-1 bottom-up merge, copying the
/// merged span back from `tmp` after every merge.
fn merge_count_baseline(v: &mut [f64], tmp: &mut [f64]) -> u64 {
    let n = v.len();
    let mut inversions = 0u64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            inversions += merge_baseline(&v[lo..hi], mid - lo, &mut tmp[lo..hi]);
            v[lo..hi].copy_from_slice(&tmp[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

fn merge_baseline(src: &[f64], mid: usize, dst: &mut [f64]) -> u64 {
    let (left, right) = src.split_at(mid);
    let mut i = 0;
    let mut j = 0;
    let mut inv = 0u64;
    for slot in dst.iter_mut() {
        if i < left.len() && (j >= right.len() || left[i] <= right[j]) {
            *slot = left[i];
            i += 1;
        } else {
            inv += (left.len() - i) as u64;
            *slot = right[j];
            j += 1;
        }
    }
    inv
}

// ---------------------------------------------------------------------------
// Workloads (traffic-shaped: integral byte counts, bursty, tie-heavy)
// ---------------------------------------------------------------------------

/// One window of traffic-like values: mostly small integral background with
/// occasional integral bursts — ties abound, as in real per-minute byte
/// counts.
fn traffic_window(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.25) {
                (rng.gen::<f64>() * 400.0).floor()
            } else {
                (rng.gen::<f64>() * 6.0).floor()
            }
        })
        .collect()
}

/// Deviations (value − mean) of one traffic window, the CCF fold's input.
fn deviations(n: usize, seed: u64) -> Vec<f64> {
    let vals = traffic_window(n, seed);
    let mean = vals.iter().sum::<f64>() / n as f64;
    vals.iter().map(|v| v - mean).collect()
}

struct RankWork {
    /// Stable sort permutation of the full compacted series.
    order: Vec<u32>,
    /// Compact index → pairwise-gathered position, `u32::MAX` when the
    /// other side is missing there (~10% of entries).
    pos: Vec<u32>,
    /// The pairwise-gathered values the filtered order points into.
    gathered: Vec<f64>,
}

/// The `gather_pairwise` shape the rank kernels run against: a per-series
/// sort order, a positions map with holes, and the gathered values.
fn rank_work(n: usize, seed: u64) -> RankWork {
    let vals = traffic_window(n, seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&p, &q| {
        vals[p as usize]
            .partial_cmp(&vals[q as usize])
            .expect("finite values compare")
    });
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let mut pos = vec![0u32; n];
    let mut gathered = Vec::with_capacity(n);
    for (k, slot) in pos.iter_mut().enumerate() {
        if rng.gen_bool(0.1) {
            *slot = u32::MAX;
        } else {
            *slot = gathered.len() as u32;
            gathered.push(vals[k]);
        }
    }
    RankWork {
        order,
        pos,
        gathered,
    }
}

/// A noisy monotone sequence in x-sorted order: the Kendall y-array of a
/// positively correlated pair, with enough disorder that the inversion
/// count is a real merge workload.
fn kendall_y(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (i as f64 * 0.25 + rng.gen::<f64>() * n as f64 * 0.2).floor())
        .collect()
}

/// Two ascending-sorted samples from shifted traffic distributions (the KS
/// scan's input; unequal lengths exercise both cursors).
fn ks_samples(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut a = traffic_window(n, seed);
    let mut b: Vec<f64> = traffic_window(n * 4 / 5, seed ^ 0xABCD)
        .iter()
        .map(|v| v * 1.1 + 1.0)
        .collect();
    a.sort_by(|p, q| p.partial_cmp(q).expect("finite values compare"));
    b.sort_by(|p, q| p.partial_cmp(q).expect("finite values compare"));
    (a, b)
}

fn lag_grid() -> Vec<i64> {
    (-LAG_SPAN..=LAG_SPAN).collect()
}

// ---------------------------------------------------------------------------
// Bit-identity (asserted on the bench inputs before any timing)
// ---------------------------------------------------------------------------

fn assert_ties_identical(a: &KendallTies, b: &KendallTies, what: &str) {
    assert_eq!(a.n_tied_pairs, b.n_tied_pairs, "{what}: tied pairs");
    assert_eq!(a.vt.to_bits(), b.vt.to_bits(), "{what}: vt");
    assert_eq!(a.sum_t2.to_bits(), b.sum_t2.to_bits(), "{what}: sum_t2");
    assert_eq!(a.sum_t3.to_bits(), b.sum_t3.to_bits(), "{what}: sum_t3");
}

/// Every kernel must reproduce its frozen baseline bit for bit on this
/// window size.
fn assert_bit_identical(n: usize) {
    // Kernel A: batched CCF moments, plus the fused pair fold.
    let (a, b) = (deviations(n, 11), deviations(n, 23));
    let lags = lag_grid();
    let (mut batch, mut per_lag) = (Vec::new(), Vec::new());
    dot_lags_batch(&a, &b, &lags, &mut batch);
    lag_cells_baseline(&a, &b, &lags, &mut per_lag);
    for (lag, (x, y)) in lags.iter().zip(batch.iter().zip(&per_lag)) {
        assert_eq!(x.to_bits(), y.to_bits(), "CCF cell at lag {lag}, n={n}");
    }
    let (sv, sr) = sxy_fold2(&a, &b, 0.5, -0.5, &b, &a, 1.5, 2.5);
    assert_eq!(sv.to_bits(), sxy_fold(&a, &b, 0.5, -0.5).to_bits());
    assert_eq!(sr.to_bits(), sxy_fold(&b, &a, 1.5, 2.5).to_bits());

    // Kernel B: the rank transform — the small-domain counting lane on the
    // integral traffic window, the comparison-sort fallback on a shifted
    // (non-integral) copy — plus the order filter + tie-run walk.
    let vals = traffic_window(n, 37);
    for vals in [
        vals.clone(),
        vals.iter().map(|v| v + 0.25).collect::<Vec<f64>>(),
    ] {
        let (order_old, ranks_rs_old, ties_old) = rank_series_baseline(&vals);
        let ranked = rank_series(&vals);
        let order_new: Vec<usize> = ranked.order.iter().map(|&i| i as usize).collect();
        assert_eq!(order_new, order_old, "sort permutation, n={n}");
        for (i, (x, y)) in ranked.ranks.iter().zip(&ranks_rs_old).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "series rank {i}, n={n}");
        }
        assert_eq!(ranked.ties, ties_old, "tie groups, n={n}");
        let (mut kv, mut ranks_kv, mut ties_kv) = (Vec::new(), Vec::new(), Vec::new());
        stable_value_sort(&vals, &mut kv);
        ranks_from_sorted_pairs(&kv, &mut ranks_kv, &mut ties_kv);
        let order_kv: Vec<usize> = kv.iter().map(|pair| pair.1 as usize).collect();
        assert_eq!(order_kv, order_old, "pair-sort permutation, n={n}");
        for (i, (x, y)) in ranks_kv.iter().zip(&ranks_rs_old).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "pair-sort rank {i}, n={n}");
        }
        assert_eq!(ties_kv, ties_old, "pair-sort tie groups, n={n}");
    }
    let work = rank_work(n, 37);
    let (mut f_new, mut f_old) = (Vec::new(), Vec::new());
    filter_order_into(&work.order, &work.pos, &mut f_new);
    filter_order_baseline(&work.order, &work.pos, &mut f_old);
    assert_eq!(f_new, f_old, "filtered order, n={n}");
    let (mut sv_buf, mut ranks_new, mut runs_new) = (Vec::new(), Vec::new(), Vec::new());
    let (mut ranks_old, mut runs_old) = (Vec::new(), Vec::new());
    let ties_new = order_stats_gather(
        &f_new,
        &work.gathered,
        &mut sv_buf,
        Some(&mut ranks_new),
        Some(&mut runs_new),
    );
    let ties_old = order_stats_baseline(
        &f_old,
        &work.gathered,
        Some(&mut ranks_old),
        Some(&mut runs_old),
    );
    assert_eq!(ranks_new.len(), ranks_old.len());
    for (i, (x, y)) in ranks_new.iter().zip(&ranks_old).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "rank {i}, n={n}");
    }
    assert_eq!(runs_new, runs_old, "tie runs, n={n}");
    assert_ties_identical(&ties_new, &ties_old, "order stats");

    // Kernel C: inversion count (and both paths sort ascending) — the
    // integral y-array takes the Fenwick lane, a scaled (non-integral) copy
    // takes the general merge.
    let y = kendall_y(n, 53);
    for y in [
        y.clone(),
        y.iter().map(|v| v * 0.5 + 0.25).collect::<Vec<f64>>(),
    ] {
        let mut buf_new = y.clone();
        let mut buf_old = y.clone();
        let mut tmp_new = Vec::new();
        let mut tmp_old = vec![0.0; n];
        let inv_new = count_inversions(&mut buf_new, &mut tmp_new);
        let inv_old = merge_count_baseline(&mut buf_old, &mut tmp_old);
        assert_eq!(inv_new, inv_old, "inversion count, n={n}");
        for (x, y) in buf_new.iter().zip(&buf_old) {
            assert_eq!(x.to_bits(), y.to_bits(), "sorted output, n={n}");
        }
    }

    // Kernel D: KS sup-scan.
    let (ka, kb) = ks_samples(n, 71);
    assert_eq!(
        ks_sup_scan(&ka, &kb).to_bits(),
        ks_sup_scan_reference(&ka, &kb).to_bits(),
        "KS D statistic, n={n}"
    );
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Repetitions that stretch one timing sample of a closure to ~`target_ms`.
fn calibrate_reps<F: FnMut()>(mut f: F, target_ms: f64) -> usize {
    let start = Instant::now();
    let mut reps = 0usize;
    while start.elapsed().as_secs_f64() * 1e3 < target_ms {
        f();
        reps += 1;
    }
    reps.max(1)
}

struct KernelTimes {
    baseline_ms: f64,
    kernel_ms: f64,
}

impl KernelTimes {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.kernel_ms
    }
}

/// Times one kernel/baseline closure pair over a shared calibrated
/// repetition count (calibrated on the baseline, so both paths do the same
/// number of calls per sample).
fn time_pair<K: FnMut(), B: FnMut()>(mut kernel: K, mut baseline: B) -> KernelTimes {
    let reps = calibrate_reps(&mut baseline, 20.0);
    let baseline_ms = median_ms(5, || {
        for _ in 0..reps {
            baseline();
        }
    });
    let kernel_ms = median_ms(5, || {
        for _ in 0..reps {
            kernel();
        }
    });
    KernelTimes {
        baseline_ms,
        kernel_ms,
    }
}

fn time_pearson_moments(n: usize) -> KernelTimes {
    let (a, b) = (deviations(n, 11), deviations(n, 23));
    let lags = lag_grid();
    let mut out_new = Vec::new();
    let mut out_old = Vec::new();
    time_pair(
        || {
            dot_lags_batch(black_box(&a), black_box(&b), &lags, &mut out_new);
            black_box(&out_new);
        },
        || {
            lag_cells_baseline(black_box(&a), black_box(&b), &lags, &mut out_old);
            black_box(&out_old);
        },
    )
}

fn time_rank_gather(n: usize) -> KernelTimes {
    let vals = traffic_window(n, 37);
    time_pair(
        || {
            black_box(rank_series(black_box(&vals)));
        },
        || {
            black_box(rank_series_baseline(black_box(&vals)));
        },
    )
}

fn time_kendall_inversions(n: usize) -> KernelTimes {
    let y = kendall_y(n, 53);
    let mut buf_new = vec![0.0; n];
    let mut buf_old = vec![0.0; n];
    let mut tmp_new = Vec::new();
    let mut tmp_old = vec![0.0; n];
    time_pair(
        || {
            buf_new.copy_from_slice(&y);
            black_box(count_inversions(black_box(&mut buf_new), &mut tmp_new));
        },
        || {
            buf_old.copy_from_slice(&y);
            black_box(merge_count_baseline(black_box(&mut buf_old), &mut tmp_old));
        },
    )
}

fn time_ks_sup_scan(n: usize) -> KernelTimes {
    let (a, b) = ks_samples(n, 71);
    time_pair(
        || {
            black_box(ks_sup_scan(black_box(&a), black_box(&b)));
        },
        || {
            black_box(ks_sup_scan_reference(black_box(&a), black_box(&b)));
        },
    )
}

#[allow(clippy::type_complexity)]
const KERNELS: [(&str, fn(usize) -> KernelTimes); 4] = [
    ("pearson_moments", time_pearson_moments),
    ("rank_gather", time_rank_gather),
    ("kendall_inversions", time_kendall_inversions),
    ("ks_sup_scan", time_ks_sup_scan),
];

// ---------------------------------------------------------------------------
// Criterion group (interactive), baseline writer, CI smoke
// ---------------------------------------------------------------------------

fn bench_kernels(c: &mut Criterion) {
    let n = WINDOWS[1];
    assert_bit_identical(n);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    let (a, b) = (deviations(n, 11), deviations(n, 23));
    let lags = lag_grid();
    let mut out = Vec::new();
    group.bench_with_input(BenchmarkId::new("pearson_moments", n), &n, |bch, _| {
        bch.iter(|| {
            dot_lags_batch(black_box(&a), black_box(&b), &lags, &mut out);
        })
    });

    let vals = traffic_window(n, 37);
    group.bench_with_input(BenchmarkId::new("rank_gather", n), &n, |bch, _| {
        bch.iter(|| rank_series(black_box(&vals)))
    });

    let y = kendall_y(n, 53);
    let mut buf = vec![0.0; n];
    let mut tmp = Vec::new();
    group.bench_with_input(BenchmarkId::new("kendall_inversions", n), &n, |bch, _| {
        bch.iter(|| {
            buf.copy_from_slice(&y);
            count_inversions(black_box(&mut buf), &mut tmp)
        })
    });

    let (ka, kb) = ks_samples(n, 71);
    group.bench_with_input(BenchmarkId::new("ks_sup_scan", n), &n, |bch, _| {
        bch.iter(|| ks_sup_scan(black_box(&ka), black_box(&kb)))
    });
    group.finish();
}

/// Verifies bit-identity at both windows, then times every kernel against
/// its frozen baseline and writes the JSON baseline the repo commits under
/// `results/`.
fn write_baseline() {
    for &n in &WINDOWS {
        assert_bit_identical(n);
    }
    let mut kernel_entries = Vec::new();
    for (name, timer) in KERNELS {
        let mut window_entries = Vec::new();
        let mut min_speedup = f64::INFINITY;
        for &n in &WINDOWS {
            let t = timer(n);
            min_speedup = min_speedup.min(t.speedup());
            window_entries.push(format!(
                "      \"{n}\": {{ \"baseline_ms\": {:.3}, \"kernel_ms\": {:.3}, \"speedup\": {:.2} }}",
                t.baseline_ms,
                t.kernel_ms,
                t.speedup()
            ));
            println!(
                "{name} @ {n}: baseline {:.3} ms, kernel {:.3} ms, speedup {:.2}x",
                t.baseline_ms,
                t.kernel_ms,
                t.speedup()
            );
        }
        kernel_entries.push(format!(
            "    \"{name}\": {{\n{},\n      \"speedup_min\": {min_speedup:.2}\n    }}",
            window_entries.join(",\n")
        ));
    }
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n\"bench\": \"kernels\",\n\"baseline\": \"pre-kernel-layer loops frozen in benches/kernels.rs: per-lag serial CCF fold, Option-driven rank walk, width-1 merge with per-level copy-back, per-step f64 KS scan\",\n\"windows\": [{}, {}],\n\"lags\": {},\n\"available_parallelism\": {available},\n\"threads\": 1,\n\"kernels\": {{\n{}\n}},\n\"bit_identical\": true\n}}\n",
        WINDOWS[0],
        WINDOWS[1],
        2 * LAG_SPAN + 1,
        kernel_entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_kernels.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI smoke: bit-identity of all four kernels against the frozen baselines
/// at both window lengths, no timing, no baseline refresh.
fn smoke() {
    let start = Instant::now();
    for &n in &WINDOWS {
        assert_bit_identical(n);
    }
    println!(
        "kernels smoke: 4 kernels x {} windows bit-identical to frozen baselines in {:.2?}",
        WINDOWS.len(),
        start.elapsed(),
    );
}

criterion_group!(benches, bench_kernels);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
    write_baseline();
}
