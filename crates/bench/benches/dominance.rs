//! Benchmarks of the dominant-device scan (Definition 4) and its baselines
//! on a simulated gateway.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wtts_core::dominance::{dominant_devices, euclidean_ranking, volume_ranking};
use wtts_gwsim::{generate_gateway, FleetConfig};
use wtts_timeseries::TimeSeries;

fn bench_dominance(c: &mut Criterion) {
    let config = FleetConfig {
        n_gateways: 1,
        weeks: 4,
        ..FleetConfig::default()
    };
    let gw = generate_gateway(&config, 0);
    let devices: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
    let total = TimeSeries::sum_all(devices.iter()).unwrap();

    let mut group = c.benchmark_group("dominance");
    group.sample_size(10);
    group.bench_function("correlation_phi06", |b| {
        b.iter(|| dominant_devices(black_box(&total), black_box(&devices), 0.6))
    });
    group.bench_function("euclidean_ranking", |b| {
        b.iter(|| euclidean_ranking(black_box(&total), black_box(&devices)))
    });
    group.bench_function("volume_ranking", |b| {
        b.iter(|| volume_ranking(black_box(&devices)))
    });
    group.finish();
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);
