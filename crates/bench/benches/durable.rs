//! Durability-tax benchmark of the WAL-backed ingest pipeline: a simulated
//! 40-gateway week pushed through the chaos channel and ingested via
//! [`DurablePipeline`] at fsync on/off across three segment-rotation sizes.
//!
//! Besides the interactive Criterion output, a run refreshes the committed
//! baseline at `results/BENCH_durable.json`: median wall time and
//! reports/second per cell, plus the per-append latency distribution
//! (p50/p99 upper bounds from the lock-free `wal_append` stage histogram).
//! Appends are buffered and group-committed — the flush (and, with
//! `--fsync`, the fsync) lands on one append in ~1366, so p50 reads the
//! buffered-append cost and p99 the group-commit tail.
//!
//! `--smoke` runs a fast single-shard pass over a small fleet, asserts the
//! durable conservation law and a clean (no-gap) verdict, and leaves the
//! committed baseline alone (used by `scripts/ci.sh`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wtts_core::ingest::{IngestConfig, IngestReport, MetricsSnapshot};
use wtts_core::{wal_disk_usage, Durability, DurableConfig, DurablePipeline, DurableRun};
use wtts_gwsim::{gateway_reports, ChannelConfig, Fleet, FleetConfig, TaggedReport};

const FLEET_GATEWAYS: usize = 40;
const SEGMENT_BYTES: [u64; 3] = [256 * 1024, 1024 * 1024, 8 * 1024 * 1024];

fn envelope(t: &TaggedReport) -> IngestReport {
    IngestReport {
        gateway: t.gateway as u64,
        device: t.device as u32,
        at: t.report.at,
        cum_in: t.report.cum_in,
        cum_out: t.report.cum_out,
    }
}

/// One simulated fleet week through a channel with everything wrong at
/// once, so the WAL logs the same messy stream the pipeline degrades on.
fn fleet_reports(n_gateways: usize) -> Vec<IngestReport> {
    let channel = ChannelConfig {
        loss: 0.02,
        duplication: 0.01,
        reorder: 0.01,
    };
    let fleet = Fleet::new(FleetConfig {
        n_gateways,
        weeks: 1,
        ..FleetConfig::default()
    });
    let mut out = Vec::new();
    for id in 0..n_gateways {
        let gw = fleet.gateway(id);
        let mut rng = SmallRng::seed_from_u64(0xD04A8 + id as u64);
        out.extend(gateway_reports(&gw, channel, &mut rng).iter().map(envelope));
    }
    out
}

/// A fresh WAL directory per run, unique across iterations and processes.
fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("wtts-bench-durable-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench WAL dir");
    dir
}

/// One complete durable run in a fresh directory; returns the final metrics
/// and the WAL footprint left on disk, then removes the directory.
fn run(reports: &[IngestReport], fsync: bool, segment_bytes: u64) -> (MetricsSnapshot, u64) {
    let dir = fresh_dir();
    let config = IngestConfig {
        shards: 1,
        ..IngestConfig::default()
    };
    let mut durable = DurableConfig::new(&dir);
    durable.fsync = fsync;
    durable.segment_bytes = segment_bytes;
    let mut pipeline =
        DurablePipeline::create(config, Vec::new(), durable).expect("create durable pipeline");
    let outcome = pipeline
        .run(reports.iter().copied(), None)
        .expect("durable ingest run");
    let m = match outcome {
        DurableRun::Completed {
            summary,
            durability,
            ..
        } => {
            assert!(
                matches!(durability, Durability::Durable),
                "fault-free bench run must not report a durability gap"
            );
            summary.metrics
        }
        DurableRun::Killed => unreachable!("no kill point armed"),
    };
    assert!(
        m.durably_accounted(),
        "durable accounting violated: wal {} + gap {} + lost {} != offered {}",
        m.wal_records,
        m.wal_gap_records,
        m.wal_lost_records,
        m.offered
    );
    let disk = wal_disk_usage(&dir).expect("measure WAL disk usage");
    std::fs::remove_dir_all(&dir).expect("remove bench WAL dir");
    (m, disk)
}

fn bench_durable(c: &mut Criterion) {
    let reports = fleet_reports(FLEET_GATEWAYS);
    let mut group = c.benchmark_group("durable");
    group.sample_size(10);
    for fsync in [false, true] {
        let label = if fsync { "fsync" } else { "buffered" };
        group.bench_with_input(BenchmarkId::new(label, "1MiB"), &fsync, |b, &fsync| {
            b.iter(|| run(black_box(&reports), fsync, 1024 * 1024))
        });
    }
    group.finish();
}

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Re-times every fsync × segment-size cell and writes the JSON baseline
/// the repo commits under `results/`.
fn write_baseline() {
    let reports = fleet_reports(FLEET_GATEWAYS);
    let offered = reports.len();
    let mut entries = Vec::new();
    for fsync in [false, true] {
        for segment_bytes in SEGMENT_BYTES {
            // One instrumented run for the latency distribution and WAL
            // footprint, then timed repeats for the wall-clock median.
            let (m, disk) = run(&reports, fsync, segment_bytes);
            let wal = &m.per_shard[0].wal_append.latency_ns;
            let t = median_ms(3, || {
                black_box(run(black_box(&reports), fsync, segment_bytes));
            });
            let rps = offered as f64 / (t / 1e3);
            // The group-commit flush lands on ~1 append in 1366, past the
            // 99th percentile — p99.9 and max are what expose the fsync tax.
            entries.push(format!(
                "    {{\n      \"fsync\": {fsync},\n      \"segment_bytes\": {segment_bytes},\n      \"median_ms\": {t:.3},\n      \"reports_per_sec\": {rps:.0},\n      \"append_p50_ns_le\": {},\n      \"append_p99_ns_le\": {},\n      \"append_p999_ns_le\": {},\n      \"append_max_ns_le\": {},\n      \"appends\": {},\n      \"segments_created\": {},\n      \"segments_compacted\": {},\n      \"snapshots_written\": {},\n      \"wal_disk_bytes\": {disk}\n    }}",
                wal.quantile_upper(0.5),
                wal.quantile_upper(0.99),
                wal.quantile_upper(0.999),
                wal.quantile_upper(1.0),
                wal.total(),
                m.wal_segments_created,
                m.wal_segments_compacted,
                m.snapshots_written,
            ));
        }
    }
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n\"bench\": \"durable\",\n\"gateways\": {FLEET_GATEWAYS},\n\"weeks\": 1,\n\"offered_reports\": {offered},\n\"available_parallelism\": {available},\n\"runs\": [\n{}\n]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_durable.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI smoke: a small fleet, buffered WAL at the default rotation size,
/// durable conservation asserted, no baseline rewrite.
fn smoke() {
    let reports = fleet_reports(8);
    let start = Instant::now();
    let (m, disk) = run(&reports, false, 1024 * 1024);
    let elapsed = start.elapsed();
    println!(
        "durable smoke: {} reports logged across {} segments ({} compacted), \
         {} snapshots, {disk} WAL bytes left in {elapsed:.2?}",
        m.wal_records, m.wal_segments_created, m.wal_segments_compacted, m.snapshots_written,
    );
    assert!(m.offered > 0);
    assert_eq!(m.wal_records, m.offered);
    assert!(m.wal_segments_created > 0);
}

criterion_group!(benches, bench_durable);

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
    write_baseline();
}
