//! Benchmark of the sketch-pruned sparse correlation matrix against the
//! dense all-pairs engine, on synthetic gateway populations drawn from the
//! schedule-family generator (`wtts_gwsim::synth`).
//!
//! The dense path evaluates Definition 1 exactly for all n(n−1)/2 pairs —
//! quadratic however regular the fleet is. The pruned path first runs the
//! sketch cascade (degenerate → SAX MINDIST → moment bounds) and only
//! evaluates survivors, so its cost is quadratic in *cheap bound checks*
//! but near-linear in *exact evaluations* when most pairs are provably
//! below threshold, which is exactly the regime a real fleet at φ = 0.6
//! presents. The committed baseline (`results/BENCH_pruning.json`) records
//! both wall times and the evaluated-pair counts at 500 → 50k gateways, so
//! the scaling bend is visible in the data, not just claimed.
//!
//! All timings are single-threaded (`threads = Some(1)`): the reference box
//! exposes one core, and a fixed thread count keeps the committed numbers
//! comparable across machines.
//!
//! Dense wall time at 50k (~625 million exact evaluations) is hours, so the
//! baseline measures dense up to 10k and extrapolates 10k → 50k by the
//! exact ×25 pair-count ratio, labeled `dense_extrapolated` in the JSON.
//!
//! `--smoke` runs a 2k-gateway pass asserting prune rate ≥ 0.90 at φ = 0.6,
//! the conservation law `pairs_pruned + pairs_evaluated == pairs_total`
//! (from both `PruneStats` and the obs counters) and bit-identity against
//! the dense matrix; `--metrics-json PATH` additionally writes the obs
//! snapshot (used by `scripts/ci.sh`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use std::time::Instant;
use wtts_core::engine::{
    cor_matrix, cor_matrix_pruned, cor_matrix_pruned_observed, profile_series, sketch_series,
    CondensedMatrix, CorMatrixConfig, PruneConfig, PruneStats, SparseCorMatrix,
};
use wtts_core::obs::PipelineObs;
use wtts_gwsim::{synthetic_windows, SynthConfig};
use wtts_stats::CorProfile;

const PHI: f64 = 0.6;

fn population(n_gateways: usize) -> Vec<Vec<f64>> {
    synthetic_windows(&SynthConfig {
        n_gateways,
        ..SynthConfig::default()
    })
}

/// Single-thread matrix config: the committed numbers are one-core numbers.
fn matrix_config() -> CorMatrixConfig {
    CorMatrixConfig {
        threads: Some(1),
        ..CorMatrixConfig::default()
    }
}

fn prune_config() -> PruneConfig {
    PruneConfig {
        matrix: matrix_config(),
        ..PruneConfig::at_threshold(PHI)
    }
}

fn dense(profiles: &[CorProfile]) -> CondensedMatrix {
    cor_matrix(profiles, &matrix_config())
}

fn pruned(
    profiles: &[CorProfile],
    sketches: &[wtts_stats::CorSketch],
) -> (SparseCorMatrix, PruneStats) {
    cor_matrix_pruned(profiles, sketches, &prune_config())
}

/// Zero false dismissals, bit for bit: every dense entry ≥ φ must appear in
/// the sparse matrix with the identical f32, and every absent pair must be
/// below φ in the dense matrix too.
fn assert_bit_identical(sparse: &SparseCorMatrix, dense: &CondensedMatrix, n: usize) {
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dense.get(i, j);
            match sparse.get(i, j) {
                Some(s) => assert_eq!(
                    s.to_bits(),
                    d.to_bits(),
                    "survivor ({i},{j}) differs from dense"
                ),
                None => assert!(
                    (d as f64) < PHI,
                    "pair ({i},{j}) pruned but dense similarity {d} >= {PHI}"
                ),
            }
        }
    }
}

fn bench_pruned_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruned_pairwise");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let windows = population(n);
        let profiles = profile_series(&windows);
        let sketches = sketch_series(&profiles, &prune_config().sketch);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| dense(black_box(&profiles)))
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &n, |b, _| {
            b.iter(|| pruned(black_box(&profiles), black_box(&sketches)))
        });
    }
    group.finish();
}

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

struct SizeRow {
    n: usize,
    pairs_total: u64,
    pairs_evaluated: u64,
    prune_rate: f64,
    dense_ms: f64,
    dense_extrapolated: bool,
    pruned_ms: f64,
    bit_identical: Option<bool>,
}

/// Verifies bit-identity where dense is measured, times both paths at every
/// size and writes the JSON baseline the repo commits under `results/`.
fn write_baseline() {
    let sizes = [500usize, 2_000, 10_000, 50_000];
    // Dense sample counts per size; 0 means extrapolate from the previous
    // measured size by the exact pair-count ratio.
    let dense_samples = [5usize, 3, 1, 0];
    let pruned_samples = [5usize, 3, 1, 1];

    let mut rows: Vec<SizeRow> = Vec::new();
    let mut speedup_10k = f64::NAN;
    for (k, &n) in sizes.iter().enumerate() {
        let windows = population(n);
        let profiles = profile_series(&windows);
        let sketches = sketch_series(&profiles, &prune_config().sketch);

        let (sparse, stats) = pruned(&profiles, &sketches);
        let pruned_ms = median_ms(pruned_samples[k], || {
            black_box(pruned(black_box(&profiles), black_box(&sketches)));
        });

        let (dense_ms, dense_extrapolated, bit_identical) = if dense_samples[k] > 0 {
            let reference = dense(&profiles);
            assert_bit_identical(&sparse, &reference, n);
            drop(reference);
            let t = median_ms(dense_samples[k], || {
                black_box(dense(black_box(&profiles)));
            });
            (t, false, Some(true))
        } else {
            let prev = rows.last().expect("extrapolation needs a measured size");
            assert!(!prev.dense_extrapolated, "chained extrapolation");
            let ratio = (n * (n - 1)) as f64 / (prev.n * (prev.n - 1)) as f64;
            (prev.dense_ms * ratio, true, None)
        };

        assert!(stats.conserved(), "prune stats must balance at n = {n}");
        let row = SizeRow {
            n,
            pairs_total: stats.pairs_total,
            pairs_evaluated: stats.pairs_evaluated,
            prune_rate: stats.prune_rate(),
            dense_ms,
            dense_extrapolated,
            pruned_ms,
            bit_identical,
        };
        if n == 10_000 {
            speedup_10k = row.dense_ms / row.pruned_ms;
        }
        println!(
            "n = {n}: dense {:.1} ms{}, pruned {:.1} ms, {} of {} pairs evaluated (prune rate {:.3})",
            row.dense_ms,
            if dense_extrapolated { " (extrapolated)" } else { "" },
            row.pruned_ms,
            row.pairs_evaluated,
            row.pairs_total,
            row.prune_rate,
        );
        rows.push(row);
        drop(sparse);
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"pairs_total\": {}, \"pairs_evaluated\": {}, \"prune_rate\": {:.4}, \"dense_ms\": {:.3}, \"dense_extrapolated\": {}, \"pruned_ms\": {:.3}, \"bit_identical\": {}}}",
                r.n,
                r.pairs_total,
                r.pairs_evaluated,
                r.prune_rate,
                r.dense_ms,
                r.dense_extrapolated,
                r.pruned_ms,
                r.bit_identical
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n\"bench\": \"pruned_pairwise\",\n\"baseline\": \"dense cor_matrix: exact Definition-1 evaluation of all n(n-1)/2 pairs\",\n\"phi\": {PHI},\n\"series_len\": 56,\n\"families\": 32,\n\"threads\": 1,\n\"available_parallelism\": {available},\n\"sizes\": [\n{}\n],\n\"speedup_single_thread\": {:.2},\n\"bit_identical\": true\n}}\n",
        entries.join(",\n"),
        speedup_10k,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_pruning.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI smoke: 2k gateways at φ = 0.6 with observability on — prune rate,
/// conservation (stats and obs counters) and bit-identity asserted.
/// `--metrics-json PATH` writes the obs snapshot.
fn smoke(metrics_json: Option<&str>) {
    let n = 2_000;
    let windows = population(n);
    let start = Instant::now();

    let obs = PipelineObs::new();
    let profiles = profile_series(&windows);
    let sketches = sketch_series(&profiles, &prune_config().sketch);
    let (sparse, stats) =
        cor_matrix_pruned_observed(&profiles, &sketches, &prune_config(), Some(&obs));

    assert!(stats.conserved(), "prune stats must balance");
    assert!(
        stats.prune_rate() >= 0.90,
        "prune rate {:.3} below 0.90 at phi = {PHI}",
        stats.prune_rate()
    );
    assert_eq!(sparse.evaluated_pairs() as u64, stats.pairs_evaluated);

    let snapshot = obs.snapshot();
    assert!(snapshot.conserved(), "stage books must balance");
    assert!(snapshot.quiescent(), "no span may be left open");
    assert_eq!(
        snapshot.counter("pairs_pruned_degenerate")
            + snapshot.counter("pairs_pruned_sax")
            + snapshot.counter("pairs_pruned_moment")
            + snapshot.counter("prune_pairs_evaluated"),
        snapshot.counter("prune_pairs_total"),
        "obs pair books must balance"
    );

    let reference = dense(&profiles);
    assert_bit_identical(&sparse, &reference, n);

    println!(
        "pruned_pairwise smoke: {} gateways, {} of {} pairs evaluated (prune rate {:.3}), bit-identical in {:.2?}",
        n,
        stats.pairs_evaluated,
        stats.pairs_total,
        stats.prune_rate(),
        start.elapsed(),
    );
    if let Some(path) = metrics_json {
        std::fs::write(path, snapshot.to_json()).expect("write metrics json");
        println!("metrics written to {path}");
    }
}

criterion_group!(benches, bench_pruned_pairwise);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let metrics_json = args
            .iter()
            .position(|a| a == "--metrics-json")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str);
        smoke(metrics_json);
        return;
    }
    benches();
    write_baseline();
}
