//! Benchmark of the granularity-pyramid Definition-3 sweep against the
//! pre-pyramid per-candidate path, on the paper's hardest grid: the daily
//! sweep over every 1–180-minute granularity of one gateway's four-week
//! per-minute series.
//!
//! The baseline re-runs, per candidate, exactly what the experiments runner
//! used to execute to produce the daily figures: fig 8 called
//! `daily_window_correlation` and then `stationary_weekday_count`, and fig 7
//! independently re-ran `stationary_weekday_count` over the shared
//! candidates — three passes per candidate, each aggregating the minute
//! series from scratch, re-extracting windows and rebuilding profiles
//! (generalized here to the full 1–180 grid both figures now read from one
//! sweep). The sweep path builds one prefix-sum pyramid, shares windows,
//! profiles and the fused correlation + stationarity loop across all 180
//! candidates, and serves both figures from a single result.
//!
//! Besides the interactive Criterion output, a run refreshes the committed
//! baseline at `results/BENCH_aggregation.json` (median wall times, the
//! single-thread speedup, and the bit-identity verdict — every score and
//! stationarity check is compared against the baseline before timing).
//!
//! `--smoke` runs a fast pass over a small series and asserts bit-identity
//! plus the observability conservation laws, without touching the committed
//! baseline; `--metrics-json PATH` additionally writes the obs snapshot
//! (used by `scripts/ci.sh`).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use std::time::Instant;
use wtts_core::engine::cor_profiled;
use wtts_core::obs::PipelineObs;
use wtts_core::stationarity::{strong_stationarity, StationarityCheck};
use wtts_core::sweep::{daily_sweep, DailySweep, SweepConfig};
use wtts_gwsim::{generate_gateway, FleetConfig};
use wtts_stats::{CorProfile, CorScratch};
use wtts_timeseries::{aggregate, daily_windows, Granularity, TimeSeries};

const WEEKS: u32 = 4;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One simulated gateway's four-week per-minute series, quantized to whole
/// bytes so the integer prefix-sum pyramid engages (real counter deltas are
/// integral; the simulator's shaping leaves fractional parts).
fn gateway_series(weeks: u32) -> TimeSeries {
    let config = FleetConfig {
        n_gateways: 1,
        weeks,
        ..FleetConfig::default()
    };
    let mut total = generate_gateway(&config, 0).aggregate_total();
    for v in total.values_mut() {
        *v = v.trunc();
    }
    total
}

/// The full sweep the paper's Section 7.1 asks for: every whole-minute
/// granularity from 1 to 180.
fn full_candidates() -> Vec<Granularity> {
    (1..=180).map(Granularity::minutes).collect()
}

struct BaselineCell {
    /// Pass 1 — the old `daily_window_correlation` body.
    score: Option<(f64, usize)>,
    /// Pass 2 — the old `daily_stationarity_by_weekday` body (fig 8).
    checks: [Option<StationarityCheck>; 7],
    /// Pass 3 — fig 7's independent `stationary_weekday_count` call.
    stationary_days: usize,
}

/// The old `daily_stationarity_by_weekday` body: aggregate from scratch,
/// extract daily windows, run the untouched `strong_stationarity` (which
/// profiles internally) per weekday.
fn baseline_stationarity(
    series: &TimeSeries,
    weeks: u32,
    g: Granularity,
) -> [Option<StationarityCheck>; 7] {
    let agg = aggregate(series, g, 0);
    let windows = daily_windows(&agg, weeks, 0);
    let mut checks: [Option<StationarityCheck>; 7] = Default::default();
    for (weekday, slot) in checks.iter_mut().enumerate() {
        let group: Vec<&[f64]> = windows
            .iter()
            .filter(|w| w.weekday.map(|d| d.index() as usize) == Some(weekday))
            .map(|w| w.series.values())
            .collect();
        *slot = strong_stationarity(&group);
    }
    checks
}

/// The pre-pyramid experiments path for one candidate: the three passes the
/// runner used to execute per gateway for the daily figures, each
/// re-aggregating and re-profiling from scratch.
fn baseline_cell(series: &TimeSeries, weeks: u32, g: Granularity) -> BaselineCell {
    // Pass 1: the old `daily_window_correlation` body (fig 8's score).
    let agg = aggregate(series, g, 0);
    let windows = daily_windows(&agg, weeks, 0);
    let mut scratch = CorScratch::new();
    let mut total = 0.0;
    let mut pairs = 0;
    for weekday in 0..7u8 {
        let group: Vec<&[f64]> = windows
            .iter()
            .filter(|w| w.weekday.map(|d| d.index()) == Some(weekday))
            .map(|w| w.series.values())
            .filter(|v| v.iter().any(|x| x.is_finite()))
            .collect();
        let profiles: Vec<CorProfile> = group.iter().map(|w| CorProfile::new(w)).collect();
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                total += cor_profiled(&profiles[i], &profiles[j], &mut scratch);
                pairs += 1;
            }
        }
    }
    let score = (pairs > 0).then(|| (total / pairs as f64, pairs));

    // Pass 2: fig 8's stationarity sweep.
    let checks = baseline_stationarity(series, weeks, g);
    // Pass 3: fig 7's independent re-run of the same call.
    let stationary_days = baseline_stationarity(series, weeks, g)
        .iter()
        .filter(|c| c.is_some_and(|c| c.is_stationary()))
        .count();
    BaselineCell {
        score,
        checks,
        stationary_days,
    }
}

fn baseline_sweep(
    series: &TimeSeries,
    weeks: u32,
    candidates: &[Granularity],
) -> Vec<BaselineCell> {
    candidates
        .iter()
        .map(|&g| baseline_cell(series, weeks, g))
        .collect()
}

fn pyramid_sweep(
    series: &TimeSeries,
    weeks: u32,
    candidates: &[Granularity],
    threads: usize,
    obs: Option<&PipelineObs>,
) -> DailySweep {
    daily_sweep(
        std::slice::from_ref(series),
        weeks,
        candidates,
        0,
        &SweepConfig {
            threads: Some(threads),
        },
        obs,
    )
}

/// Every score and stationarity verdict must match the baseline bitwise.
fn assert_bit_identical(sweep: &DailySweep, baseline: &[BaselineCell]) {
    assert_eq!(sweep.cells[0].len(), baseline.len());
    for (k, (cell, reference)) in sweep.cells[0].iter().zip(baseline).enumerate() {
        let g = sweep.candidates[k];
        match (&reference.score, &cell.score) {
            (None, None) => {}
            (Some((mean, pairs)), Some(s)) => {
                assert_eq!(
                    mean.to_bits(),
                    s.mean_correlation.to_bits(),
                    "daily mean at {g}"
                );
                assert_eq!(*pairs, s.n_pairs, "pair count at {g}");
            }
            other => panic!("score presence mismatch at {g}: {other:?}"),
        }
        assert_eq!(&reference.checks, &cell.stationarity, "stationarity at {g}");
        assert_eq!(
            reference.stationary_days,
            cell.stationary_weekday_count(),
            "stationary-day count at {g}"
        );
    }
}

fn bench_granularity_sweep(c: &mut Criterion) {
    let series = gateway_series(WEEKS);
    let candidates = full_candidates();
    let mut group = c.benchmark_group("granularity_sweep");
    group.sample_size(10);
    group.bench_function("baseline_daily_candidates", |b| {
        b.iter(|| {
            baseline_sweep(
                black_box(&series),
                WEEKS,
                black_box(Granularity::daily_candidates()),
            )
        })
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("sweep_1_180", threads),
            &threads,
            |b, &threads| {
                b.iter(|| pyramid_sweep(black_box(&series), WEEKS, &candidates, threads, None))
            },
        );
    }
    group.finish();
}

/// Median wall time of `samples` runs, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Verifies bit-identity on the full grid, then times both paths and writes
/// the JSON baseline the repo commits under `results/`.
fn write_baseline() {
    let series = gateway_series(WEEKS);
    let candidates = full_candidates();

    let reference = baseline_sweep(&series, WEEKS, &candidates);
    let sweep = pyramid_sweep(&series, WEEKS, &candidates, 1, None);
    assert_bit_identical(&sweep, &reference);

    let baseline_ms = median_ms(5, || {
        black_box(baseline_sweep(black_box(&series), WEEKS, &candidates));
    });
    let mut entries = Vec::new();
    let mut single = f64::NAN;
    for threads in THREAD_COUNTS {
        let t = median_ms(5, || {
            black_box(pyramid_sweep(
                black_box(&series),
                WEEKS,
                &candidates,
                threads,
                None,
            ));
        });
        if threads == 1 {
            single = t;
        }
        entries.push(format!("    \"{threads}\": {t:.3}"));
    }
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n\"bench\": \"granularity_sweep\",\n\"baseline\": \"pre-PR figs 7+8 pattern: daily_window_correlation + 2x stationary_weekday_count per candidate, each aggregating from scratch\",\n\"series_len\": {},\n\"weeks\": {WEEKS},\n\"candidates\": {},\n\"available_parallelism\": {available},\n\"baseline_ms\": {baseline_ms:.3},\n\"sweep_ms_by_threads\": {{\n{}\n}},\n\"speedup_single_thread\": {:.2},\n\"bit_identical\": true\n}}\n",
        series.len(),
        candidates.len(),
        entries.join(",\n"),
        baseline_ms / single,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_aggregation.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// CI smoke: a two-week series over the paper's daily candidates, with
/// bit-identity against the legacy path and the observability conservation
/// laws asserted. `--metrics-json PATH` writes the obs snapshot.
fn smoke(metrics_json: Option<&str>) {
    let series = gateway_series(2);
    let candidates = Granularity::daily_candidates();
    let start = Instant::now();

    let obs = PipelineObs::new();
    let sweep = pyramid_sweep(&series, 2, candidates, 2, Some(&obs));
    let reference = baseline_sweep(&series, 2, candidates);
    assert_bit_identical(&sweep, &reference);

    let snapshot = obs.snapshot();
    assert!(snapshot.conserved(), "stage books must balance");
    assert!(snapshot.quiescent(), "no span may be left open");
    let rebins = snapshot.counter("rebins_pyramid") + snapshot.counter("rebins_direct");
    assert_eq!(
        rebins,
        candidates.len() as u64,
        "every candidate is one rebin"
    );
    assert!(
        snapshot.counter("rebins_pyramid") > 0,
        "integer series must engage the pyramid"
    );
    println!(
        "granularity_sweep smoke: {} candidates, {} pyramid rebins, {} level folds, bit-identical in {:.2?}",
        candidates.len(),
        snapshot.counter("rebins_pyramid"),
        snapshot.counter("level_folds"),
        start.elapsed(),
    );
    if let Some(path) = metrics_json {
        std::fs::write(path, snapshot.to_json()).expect("write metrics json");
        println!("metrics written to {path}");
    }
}

criterion_group!(benches, bench_granularity_sweep);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let metrics_json = args
            .iter()
            .position(|a| a == "--metrics-json")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str);
        smoke(metrics_json);
        return;
    }
    benches();
    write_baseline();
}
