//! Benchmarks of the streaming (future-work) components: online Pearson
//! throughput, window accumulation, motif matching, plus the spectral and
//! profiling machinery.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wtts_core::profile::GatewayProfile;
use wtts_core::streaming::{MotifMatcher, MotifTemplate, OnlinePearson, WindowAccumulator};
use wtts_gwsim::{generate_gateway, FleetConfig};
use wtts_stats::{fit_ar, ljung_box, periodogram};
use wtts_timeseries::{Minute, TimeSeries, WindowKind};

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64)
        .collect()
}

fn bench_online_pearson(c: &mut Criterion) {
    let x = series(10_080);
    let y = series(10_080);
    c.bench_function("online_pearson_week_of_minutes", |b| {
        b.iter(|| {
            let mut p = OnlinePearson::new();
            for (&a, &bv) in x.iter().zip(&y) {
                p.push(black_box(a), black_box(bv));
            }
            p.correlation()
        })
    });
}

fn bench_window_accumulator(c: &mut Criterion) {
    let x = series(4 * 10_080);
    c.bench_function("window_accumulator_4_weeks", |b| {
        b.iter(|| {
            let mut acc = WindowAccumulator::new(WindowKind::Daily, 180);
            let mut emitted = 0usize;
            for (m, &v) in x.iter().enumerate() {
                emitted += acc.push(Minute(m as u32), black_box(v)).len();
            }
            emitted
        })
    });
}

fn bench_motif_matcher(c: &mut Criterion) {
    let templates: Vec<MotifTemplate> = (0..32)
        .map(|k| MotifTemplate {
            name: format!("t{k}"),
            pattern: (0..8).map(|b| ((b * 7 + k * 13) % 29) as f64).collect(),
        })
        .collect();
    let windows: Vec<Vec<f64>> = (0..200)
        .map(|k| (0..8).map(|b| ((b * 11 + k * 3) % 31) as f64).collect())
        .collect();
    c.bench_function("motif_matcher_200_windows_32_templates", |b| {
        b.iter(|| {
            let mut m = MotifMatcher::new(templates.clone(), 0.8);
            for w in &windows {
                let _ = m.observe(black_box(w));
            }
            m.novel_count()
        })
    });
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral");
    for n in [1440usize, 10_080] {
        let x = series(n);
        group.bench_with_input(BenchmarkId::new("periodogram", n), &n, |b, _| {
            b.iter(|| periodogram(black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("ljung_box_60", n), &n, |b, _| {
            b.iter(|| ljung_box(black_box(&x), 60))
        });
        group.bench_with_input(BenchmarkId::new("ar4_fit", n), &n, |b, _| {
            b.iter(|| fit_ar(black_box(&x), 4))
        });
    }
    group.finish();
}

fn bench_profile(c: &mut Criterion) {
    let config = FleetConfig {
        n_gateways: 1,
        weeks: 2,
        ..FleetConfig::default()
    };
    let gw = generate_gateway(&config, 0);
    let devices: Vec<TimeSeries> = gw.devices.iter().map(|d| d.total()).collect();
    let mut group = c.benchmark_group("profile");
    group.sample_size(10);
    group.bench_function("gateway_profile_2_weeks", |b| {
        b.iter(|| GatewayProfile::analyze(black_box(&devices), 2))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_online_pearson,
    bench_window_accumulator,
    bench_motif_matcher,
    bench_spectral,
    bench_profile
);
criterion_main!(benches);
