//! Residential-gateway fleet simulator.
//!
//! The paper analyzes a closed dataset: per-minute traffic counters from 196
//! real home gateways of a European ISP, collected over two months starting
//! Monday, March 17, 2014. This crate is the substitute substrate — a
//! generative model of that deployment calibrated to the statistical
//! properties the paper reports about its data:
//!
//! * per-minute traffic values follow a Zipf-like distribution dominated by
//!   low-valued background traffic, with active usage showing up as
//!   outliers (Figure 1);
//! * incoming and outgoing traffic are strongly correlated (mean ≈ 0.92);
//! * per-device background levels sit mostly below 5000 bytes/minute, with
//!   portables lowest and a heavy tail of fixed machines above 40 kB/min
//!   (Figure 4);
//! * traffic is non-stationary at 1-minute binning but becomes regular under
//!   coarser aggregation for households with regular habits;
//! * households follow recognizable behavioral archetypes (evening, workday,
//!   heavy-weekend, …) that the motif analysis recovers (Figures 11, 14);
//! * most households have a *dominant device* that drives gateway traffic
//!   (Section 6.2), portables dominate short evening/weekend usage and
//!   fixed machines dominate sustained weekday usage.
//!
//! Traces are deterministic functions of `(FleetConfig, gateway id)`; the
//! [`Fleet`] renders gateways lazily so paper-scale experiments run at
//! single-gateway memory cost.

pub mod apps;
pub mod archetype;
pub mod collector;
pub mod config;
pub mod crash;
pub mod device;
pub mod export;
pub mod faults;
pub mod fleet;
pub mod gateway;
pub mod rng;
pub mod synth;
pub mod wifi;

pub use apps::AppProfile;
pub use archetype::HouseholdArchetype;
pub use collector::{
    delivery_stats, device_reports, gateway_reports, reassemble, ChannelConfig, DeliveryStats,
    Report, TaggedReport,
};
pub use config::FleetConfig;
pub use crash::kill_points;
pub use device::{DeviceRole, DeviceSpec};
pub use export::{write_counter_csv, write_inventory_csv, write_traffic_csv};
pub use faults::{enospc_storm, fault_schedule, FaultEvent, FaultOp, FAULT_OPS};
pub use fleet::Fleet;
pub use gateway::{generate_gateway, AccessTech, Reliability, SimDevice, SimGateway};
pub use synth::{synthetic_window, synthetic_windows, SynthConfig};
pub use wifi::{apply_airtime_contention, PhyRate};
