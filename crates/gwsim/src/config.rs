//! Fleet-level simulation configuration.

/// Configuration of a simulated residential-gateway fleet.
///
/// Defaults reproduce the scale of the paper's deployment: 196 gateways
/// observed for six weeks (the weekly-motif analysis uses six weeks starting
/// March 17; most other analyses use the first four).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of gateways in the deployment.
    pub n_gateways: usize,
    /// Number of whole weeks to simulate, starting Monday 00:00.
    pub weeks: u32,
    /// Master seed; every gateway derives its own deterministic stream.
    pub seed: u64,
    /// Mean number of transient guest devices per gateway.
    pub guest_rate: f64,
    /// Fraction of gateways with day-scale reporting gaps.
    pub flaky_day_fraction: f64,
    /// Fraction of gateways with week-scale gaps (late joiners, vacations).
    pub flaky_week_fraction: f64,
    /// Base rate of household sessions per day (scaled by archetype and
    /// resident count).
    pub base_sessions_per_day: f64,
    /// Share of gateways on ADSL (the rest split fiber 100/10 vs 30/3 as in
    /// the paper's deployment).
    pub adsl_share: f64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            n_gateways: 196,
            weeks: 6,
            seed: 0x5EED_2014_0317,
            guest_rate: 2.8,
            flaky_day_fraction: 0.28,
            flaky_week_fraction: 0.22,
            base_sessions_per_day: 7.0,
            adsl_share: 0.33,
        }
    }
}

impl FleetConfig {
    /// A small configuration for unit tests: 8 gateways, 2 weeks.
    pub fn small() -> FleetConfig {
        FleetConfig {
            n_gateways: 8,
            weeks: 2,
            ..FleetConfig::default()
        }
    }

    /// A rural ADSL deployment: slower links, fewer visitors, quieter
    /// households.
    pub fn rural_adsl() -> FleetConfig {
        FleetConfig {
            adsl_share: 0.85,
            guest_rate: 1.2,
            base_sessions_per_day: 5.0,
            ..FleetConfig::default()
        }
    }

    /// A busy urban fiber deployment: nearly all fiber, more guests, more
    /// sessions.
    pub fn busy_urban() -> FleetConfig {
        FleetConfig {
            adsl_share: 0.08,
            guest_rate: 4.5,
            base_sessions_per_day: 9.0,
            ..FleetConfig::default()
        }
    }

    /// Total simulated minutes.
    pub fn minutes(&self) -> usize {
        self.weeks as usize * wtts_timeseries::MINUTES_PER_WEEK as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = FleetConfig::default();
        assert_eq!(c.n_gateways, 196);
        assert_eq!(c.weeks, 6);
        assert_eq!(c.minutes(), 6 * 7 * 24 * 60);
    }

    #[test]
    fn presets_differ_meaningfully() {
        let rural = FleetConfig::rural_adsl();
        let urban = FleetConfig::busy_urban();
        assert!(rural.adsl_share > urban.adsl_share + 0.5);
        assert!(urban.guest_rate > rural.guest_rate);
        assert!(urban.base_sessions_per_day > rural.base_sessions_per_day);
    }

    #[test]
    fn small_config_is_small() {
        let c = FleetConfig::small();
        assert!(c.n_gateways <= 10);
        assert!(c.weeks <= 2);
    }
}
