//! The measurement pipeline: gateway → central collection server.
//!
//! The paper's deployment has every gateway report per-minute cumulative
//! counters to a central server (>20M reports over two months). Real
//! report streams suffer loss, duplication and delayed delivery; this
//! module simulates that wire and re-assembles the surviving reports with
//! [`CounterTrace`], so the repository exercises the *entire* path from
//! synthetic household behavior to decoded analysis-ready series.

use crate::gateway::{SimDevice, SimGateway};
use crate::rng::chance;
use rand::Rng;
use wtts_timeseries::{CounterTrace, Minute, TimeSeries};

/// Loss/duplication/reordering characteristics of the reporting channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Probability that a report never reaches the server.
    pub loss: f64,
    /// Probability that a delivered report is delivered twice (retries).
    pub duplication: f64,
    /// Probability that a delivered report is held back in flight and
    /// arrives a few reports late (out of order).
    pub reorder: f64,
}

impl Default for ChannelConfig {
    fn default() -> ChannelConfig {
        ChannelConfig {
            loss: 0.01,
            duplication: 0.002,
            reorder: 0.001,
        }
    }
}

impl ChannelConfig {
    /// A perfect channel: in-order, exactly-once delivery.
    pub fn lossless() -> ChannelConfig {
        ChannelConfig {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
        }
    }
}

/// One report as it arrives at the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Reporting minute.
    pub at: Minute,
    /// Cumulative incoming bytes since (re-)association.
    pub cum_in: u64,
    /// Cumulative outgoing bytes since (re-)association.
    pub cum_out: u64,
}

/// Simulates the report stream one device would send: cumulative counters
/// each connected minute, reset at re-association, passed through a lossy
/// channel.
pub fn device_reports(
    device: &SimDevice,
    channel: ChannelConfig,
    rng: &mut impl Rng,
) -> Vec<Report> {
    let mut out = Vec::new();
    let mut cum_in = 0u64;
    let mut cum_out = 0u64;
    let mut was_present = false;
    for (m, (&bi, &bo)) in device
        .incoming
        .values()
        .iter()
        .zip(device.outgoing.values())
        .enumerate()
    {
        let present = bi.is_finite() || bo.is_finite();
        if present {
            if !was_present {
                cum_in = 0;
                cum_out = 0;
            }
            cum_in += bi.max(0.0) as u64;
            cum_out += bo.max(0.0) as u64;
            if !chance(rng, channel.loss) {
                let report = Report {
                    at: Minute(m as u32),
                    cum_in,
                    cum_out,
                };
                out.push(report);
                if chance(rng, channel.duplication) {
                    out.push(report);
                }
            }
        }
        was_present = present;
    }
    inject_reorder(&mut out, channel, rng);
    out
}

/// Holds back a fraction of reports so they arrive a few positions late,
/// simulating delayed in-flight delivery.
fn inject_reorder(reports: &mut Vec<Report>, channel: ChannelConfig, rng: &mut impl Rng) {
    if channel.reorder <= 0.0 {
        return;
    }
    let mut i = 0;
    while i + 1 < reports.len() {
        if chance(rng, channel.reorder) {
            let held = reports.remove(i);
            let delay = rng.gen_range(1..=4usize);
            let dest = (i + delay).min(reports.len());
            reports.insert(dest, held);
            i = dest; // don't re-delay the same report
        }
        i += 1;
    }
}

/// A device report tagged with its origin, as the central collector sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaggedReport {
    /// Gateway the report came from.
    pub gateway: usize,
    /// Device index within the gateway.
    pub device: usize,
    /// The report payload.
    pub report: Report,
}

/// Simulates the full report stream one gateway uploads: every device's
/// reports through the lossy channel, interleaved by reporting minute the
/// way a collector would receive them (per-device order is preserved except
/// where the channel reorders).
pub fn gateway_reports(
    gateway: &SimGateway,
    channel: ChannelConfig,
    rng: &mut impl Rng,
) -> Vec<TaggedReport> {
    let mut streams: Vec<(usize, std::vec::IntoIter<Report>)> = gateway
        .devices
        .iter()
        .enumerate()
        .map(|(device, d)| (device, device_reports(d, channel, rng).into_iter()))
        .collect();
    let mut heads: Vec<(usize, Report)> = Vec::with_capacity(streams.len());
    for (device, stream) in &mut streams {
        if let Some(r) = stream.next() {
            heads.push((*device, r));
        }
    }
    let mut out = Vec::new();
    // K-way merge on the (possibly locally reordered) per-device streams;
    // ties break by device index, matching a round-robin uploader.
    while !heads.is_empty() {
        let (pos, _) = heads
            .iter()
            .enumerate()
            .min_by_key(|(_, (device, r))| (r.at.0, *device))
            .expect("heads is non-empty");
        let (device, report) = heads[pos];
        out.push(TaggedReport {
            gateway: gateway.id,
            device,
            report,
        });
        match streams[device].1.next() {
            Some(next) => heads[pos] = (device, next),
            None => {
                heads.swap_remove(pos);
            }
        }
    }
    out
}

/// Ground-truth delivery statistics of a simulated report stream, computed
/// the way a central collector would see it: per-device duplicate and
/// out-of-order arrival counts.
///
/// These are the channel-side mirror of the ingest pipeline's
/// `dropped_duplicate` / `dropped_late` observability counters — comparing
/// the two validates that the pipeline's typed drop accounting reflects
/// what the channel actually did, rather than misclassifying.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Reports in the stream.
    pub reports: usize,
    /// Reports whose (device, minute) was already delivered (channel
    /// duplication).
    pub duplicates: usize,
    /// Non-duplicate reports arriving behind a later-minute report of the
    /// same device (channel reordering).
    pub inversions: usize,
}

/// Computes [`DeliveryStats`] over a tagged report stream.
pub fn delivery_stats(reports: &[TaggedReport]) -> DeliveryStats {
    use std::collections::{HashMap, HashSet};
    let mut seen: HashMap<(usize, usize), (HashSet<u32>, u32)> = HashMap::new();
    let mut stats = DeliveryStats {
        reports: reports.len(),
        ..DeliveryStats::default()
    };
    for t in reports {
        let at = t.report.at.0;
        let (minutes, max) = seen
            .entry((t.gateway, t.device))
            .or_insert_with(|| (HashSet::new(), 0));
        if !minutes.insert(at) {
            stats.duplicates += 1;
        } else if at < *max {
            stats.inversions += 1;
        }
        *max = (*max).max(at);
    }
    stats
}

/// Server-side reassembly: deduplicates and decodes a report stream into
/// the per-minute incoming/outgoing series the analyses consume.
///
/// Duplicates keep the first delivery and counter decreases are treated as
/// re-association resets — both behaviors come from [`CounterTrace`] and
/// match the streaming ingest decoder's classification of the same stream.
/// Out-of-order arrivals (a reordering channel) are dropped rather than
/// fatal: a delayed cumulative report carries no information its successor
/// didn't already deliver. Returns the decoded series and the number of
/// late reports dropped.
pub fn reassemble(reports: &[Report], len_minutes: usize) -> (TimeSeries, TimeSeries, usize) {
    let mut inc = CounterTrace::new();
    let mut out = CounterTrace::new();
    let mut late = 0usize;
    for r in reports {
        if inc.try_push(r.at, r.cum_in).is_err() {
            late += 1;
            continue;
        }
        let _ = out.try_push(r.at, r.cum_out);
    }
    (
        inc.to_per_minute(Minute(0), len_minutes),
        out.to_per_minute(Minute(0), len_minutes),
        late,
    )
}

/// End-to-end fidelity of the pipeline for one device: the fraction of the
/// device's true traffic volume recovered after the lossy channel and
/// decoding.
pub fn recovered_volume_share(device: &SimDevice, decoded_in: &TimeSeries) -> f64 {
    let truth = device.incoming.total();
    if truth <= 0.0 {
        return 1.0;
    }
    decoded_in.total() / truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use crate::fleet::Fleet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn device() -> SimDevice {
        Fleet::new(FleetConfig {
            n_gateways: 1,
            weeks: 1,
            ..FleetConfig::default()
        })
        .gateway(0)
        .devices
        .remove(0)
    }

    #[test]
    fn lossless_channel_roundtrips_contiguous_minutes() {
        let d = device();
        let mut rng = SmallRng::seed_from_u64(1);
        let reports = device_reports(&d, ChannelConfig::lossless(), &mut rng);
        let (inc, _, late) = reassemble(&reports, d.incoming.len());
        assert_eq!(late, 0, "a lossless channel never delivers late");
        let mut checked = 0usize;
        for m in 1..d.incoming.len() {
            let (prev, cur) = (d.incoming.values()[m - 1], d.incoming.values()[m]);
            if prev.is_finite() && cur.is_finite() {
                let dec = inc.values()[m];
                assert!(dec.is_finite(), "minute {m} lost on a lossless channel");
                assert!(
                    (dec - cur.floor()).abs() <= 1.0,
                    "minute {m}: {dec} vs {cur}"
                );
                checked += 1;
            }
        }
        assert!(checked > 500, "too few contiguous minutes: {checked}");
    }

    #[test]
    fn lossy_channel_loses_little_volume() {
        let d = device();
        let mut rng = SmallRng::seed_from_u64(2);
        let reports = device_reports(&d, ChannelConfig::default(), &mut rng);
        let (inc, _, _) = reassemble(&reports, d.incoming.len());
        let share = recovered_volume_share(&d, &inc);
        // Cumulative counters are loss-tolerant: a missing report's delta is
        // recovered by the next one, so ~1% loss costs ≪ 1% volume (only the
        // tail of each association run can vanish).
        assert!(share > 0.95, "recovered share {share}");
        assert!(share <= 1.001);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let d = device();
        let mut rng = SmallRng::seed_from_u64(3);
        let heavy_dup = ChannelConfig {
            duplication: 0.5,
            ..ChannelConfig::lossless()
        };
        let reports = device_reports(&d, heavy_dup, &mut rng);
        let (inc, _, _) = reassemble(&reports, d.incoming.len());
        let share = recovered_volume_share(&d, &inc);
        assert!(
            (share - 1.0).abs() < 0.01,
            "duplication inflated volume: {share}"
        );
    }

    #[test]
    fn report_counters_reset_on_reassociation() {
        let d = device();
        let mut rng = SmallRng::seed_from_u64(4);
        let reports = device_reports(&d, ChannelConfig::lossless(), &mut rng);
        // Counters never decrease within a presence run, but must reset
        // (drop) right after a gap if the device was ever absent.
        let mut decreases = 0;
        for pair in reports.windows(2) {
            if pair[1].cum_in < pair[0].cum_in {
                decreases += 1;
                // The decrease must coincide with a reporting gap.
                assert!(pair[1].at.0 > pair[0].at.0 + 1, "reset without a gap");
            }
        }
        // Portables disconnect overnight, so at least one reset is expected
        // for a portable; fixed devices may have none. Just assert sanity.
        let _ = decreases;
    }

    #[test]
    fn reordering_channel_delivers_out_of_order() {
        let d = device();
        let mut rng = SmallRng::seed_from_u64(5);
        let shuffly = ChannelConfig {
            reorder: 0.05,
            ..ChannelConfig::lossless()
        };
        let reports = device_reports(&d, shuffly, &mut rng);
        let inversions = reports
            .windows(2)
            .filter(|pair| pair[1].at < pair[0].at)
            .count();
        assert!(inversions > 0, "5% reorder must produce inversions");
        // Reassembly degrades gracefully: late reports are dropped and
        // counted, and the decoded volume stays close to the truth (a late
        // cumulative report carries nothing its successor didn't).
        let (inc, _, late) = reassemble(&reports, d.incoming.len());
        assert!(late > 0);
        assert!(
            late <= inversions * 4,
            "late={late} inversions={inversions}"
        );
        let share = recovered_volume_share(&d, &inc);
        assert!(share > 0.9, "recovered share {share}");
    }

    #[test]
    fn gateway_reports_interleave_devices() {
        let gw = Fleet::new(FleetConfig {
            n_gateways: 1,
            weeks: 1,
            ..FleetConfig::default()
        })
        .gateway(0);
        let mut rng = SmallRng::seed_from_u64(6);
        let tagged = gateway_reports(&gw, ChannelConfig::lossless(), &mut rng);
        assert!(!tagged.is_empty());
        assert!(tagged.iter().all(|t| t.gateway == gw.id));
        let devices: std::collections::HashSet<usize> = tagged.iter().map(|t| t.device).collect();
        assert!(devices.len() > 1, "expected several devices reporting");
        // Lossless merge is globally time-ordered, and each device's
        // sub-stream is exactly its own report stream.
        assert!(tagged.windows(2).all(|w| w[0].report.at <= w[1].report.at));
        for device in 0..gw.devices.len() {
            let sub: Vec<Report> = tagged
                .iter()
                .filter(|t| t.device == device)
                .map(|t| t.report)
                .collect();
            assert!(sub.windows(2).all(|w| w[0].at < w[1].at));
        }
    }

    #[test]
    fn delivery_stats_reflect_channel_behavior() {
        let gw = Fleet::new(FleetConfig {
            n_gateways: 1,
            weeks: 1,
            ..FleetConfig::default()
        })
        .gateway(0);

        // A lossless channel delivers in order, once.
        let mut rng = SmallRng::seed_from_u64(7);
        let clean = gateway_reports(&gw, ChannelConfig::lossless(), &mut rng);
        let s = delivery_stats(&clean);
        assert_eq!(s.reports, clean.len());
        assert_eq!(s.duplicates, 0);
        assert_eq!(s.inversions, 0);

        // A chaotic channel must surface both duplicates and inversions —
        // the ground truth the ingest pipeline's drop counters classify.
        let mut rng = SmallRng::seed_from_u64(7);
        let chaos = gateway_reports(
            &gw,
            ChannelConfig {
                loss: 0.02,
                duplication: 0.02,
                reorder: 0.02,
            },
            &mut rng,
        );
        let s = delivery_stats(&chaos);
        assert!(s.duplicates > 0, "2% duplication left no duplicates");
        assert!(s.inversions > 0, "2% reorder left no inversions");
    }
}
