//! WiFi airtime model: the shared-medium capacity bound.
//!
//! The paper's gateways run an 802.11b/g/n 2×2 radio at 2.4 GHz with PHY
//! rates up to 300 Mbps, and §3 notes that reported traffic "is bounded by
//! the wireless effective throughput or the access link throughput". A WLAN
//! is a *shared* medium: devices contend for airtime, so the constraint is
//! not a per-device cap but `Σ_d demand_d / effective_rate_d ≤ 1` per unit
//! time. This module implements that airtime normalization:
//!
//! * each device gets a PHY rate class (signal quality, antenna count —
//!   portables in a far bedroom link slower than the desktop next to the
//!   AP), mapped to an *effective* UDP-level throughput (≈ 60% of PHY, the
//!   classic 802.11 MAC efficiency);
//! * each minute, if the devices' combined demand oversubscribes the
//!   airtime, every device's traffic scales down by the common contention
//!   factor — exactly how DCF fairness degrades everyone together.

use crate::rng::weighted_index;
use rand::Rng;

/// 802.11n-era PHY rate classes (2.4 GHz, 20/40 MHz, 1-2 streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhyRate {
    /// Legacy 802.11g device or deep-fade placement: 54 Mbps PHY.
    Legacy54,
    /// Single-stream n at distance: 72 Mbps.
    N72,
    /// Dual-stream, moderate signal: 144 Mbps.
    N144,
    /// Dual-stream, 40 MHz, close to the AP: 300 Mbps.
    N300,
}

impl PhyRate {
    /// All classes.
    pub const ALL: [PhyRate; 4] = [
        PhyRate::Legacy54,
        PhyRate::N72,
        PhyRate::N144,
        PhyRate::N300,
    ];

    /// Nominal PHY rate in Mbps.
    pub fn phy_mbps(self) -> f64 {
        match self {
            PhyRate::Legacy54 => 54.0,
            PhyRate::N72 => 72.0,
            PhyRate::N144 => 144.0,
            PhyRate::N300 => 300.0,
        }
    }

    /// Effective transport-level throughput in bytes per minute (≈ 60% MAC
    /// efficiency).
    pub fn effective_bytes_per_minute(self) -> f64 {
        self.phy_mbps() * 0.6 * 1e6 / 8.0 * 60.0
    }

    /// Draws a rate class: portables roam and often link slower; fixed
    /// devices and set-top boxes sit near the AP.
    pub fn sample(rng: &mut impl Rng, portable: bool) -> PhyRate {
        let weights = if portable {
            [0.15, 0.40, 0.35, 0.10]
        } else {
            [0.05, 0.15, 0.40, 0.40]
        };
        PhyRate::ALL[weighted_index(rng, &weights)]
    }
}

/// Applies the shared-airtime constraint to one minute of per-device
/// two-way demand, in place.
///
/// `demand[d]` is `(bytes_in, bytes_out)` for device `d`; `rates[d]` its
/// effective throughput (bytes/minute the medium could carry if the device
/// had 100% airtime). If total claimed airtime exceeds 1, every value is
/// scaled by `1 / claimed` — DCF throughput collapse hits everyone.
///
/// Returns the contention factor applied (1.0 = no contention).
pub fn apply_airtime_contention(demand: &mut [(f64, f64)], rates: &[PhyRate]) -> f64 {
    assert_eq!(demand.len(), rates.len(), "one rate per device");
    let mut claimed = 0.0;
    for ((bi, bo), rate) in demand.iter().zip(rates) {
        let cap = rate.effective_bytes_per_minute();
        if bi.is_finite() && bo.is_finite() && cap > 0.0 {
            claimed += (bi + bo) / cap;
        }
    }
    if claimed <= 1.0 {
        return 1.0;
    }
    let factor = 1.0 / claimed;
    for (bi, bo) in demand.iter_mut() {
        if bi.is_finite() {
            *bi *= factor;
        }
        if bo.is_finite() {
            *bo *= factor;
        }
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rate_classes_ordered() {
        assert!(PhyRate::N300.phy_mbps() > PhyRate::Legacy54.phy_mbps());
        // 300 Mbps PHY -> 0.6 * 300/8 MB/s * 60 = 1.35e9 B/min.
        let top = PhyRate::N300.effective_bytes_per_minute();
        assert!((top - 1.35e9).abs() < 1.0);
    }

    #[test]
    fn portables_link_slower_on_average() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 4000;
        let avg = |portable: bool, rng: &mut SmallRng| -> f64 {
            (0..n)
                .map(|_| PhyRate::sample(rng, portable).phy_mbps())
                .sum::<f64>()
                / n as f64
        };
        let p = avg(true, &mut rng);
        let f = avg(false, &mut rng);
        assert!(f > p + 20.0, "fixed {f} vs portable {p}");
    }

    #[test]
    fn no_contention_below_capacity() {
        let mut demand = vec![(1e6, 1e5), (2e6, 2e5)];
        let rates = vec![PhyRate::N144, PhyRate::N300];
        let original = demand.clone();
        let factor = apply_airtime_contention(&mut demand, &rates);
        assert_eq!(factor, 1.0);
        assert_eq!(demand, original);
    }

    #[test]
    fn oversubscription_scales_everyone() {
        // One slow device demanding far beyond its link plus a fast one.
        let slow_cap = PhyRate::Legacy54.effective_bytes_per_minute();
        let mut demand = vec![(slow_cap * 2.0, 0.0), (1e6, 1e5)];
        let rates = vec![PhyRate::Legacy54, PhyRate::N300];
        let factor = apply_airtime_contention(&mut demand, &rates);
        assert!(factor < 1.0);
        assert!((demand[0].0 - slow_cap * 2.0 * factor).abs() < 1e-6);
        assert!((demand[1].0 - 1e6 * factor).abs() < 1e-6);
        // After scaling, total claimed airtime is exactly 1.
        let claimed: f64 = demand
            .iter()
            .zip(&rates)
            .map(|((bi, bo), r)| (bi + bo) / r.effective_bytes_per_minute())
            .sum();
        assert!((claimed - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_devices_ignored() {
        let mut demand = vec![(f64::NAN, f64::NAN), (1e5, 1e4)];
        let rates = vec![PhyRate::N72, PhyRate::N144];
        let factor = apply_airtime_contention(&mut demand, &rates);
        assert_eq!(factor, 1.0);
        assert!(demand[0].0.is_nan());
    }

    #[test]
    #[should_panic(expected = "one rate per device")]
    fn mismatched_lengths_rejected() {
        let mut demand = vec![(1.0, 1.0)];
        let _ = apply_airtime_contention(&mut demand, &[]);
    }
}
