//! The simulated deployment: lazy, deterministic gateway access.

use crate::config::FleetConfig;
use crate::gateway::{generate_gateway, SimGateway};

/// A simulated fleet of residential gateways.
///
/// ```
/// use wtts_gwsim::{Fleet, FleetConfig};
///
/// let fleet = Fleet::new(FleetConfig { n_gateways: 2, weeks: 1, ..FleetConfig::default() });
/// let gw = fleet.gateway(0);
/// assert!(!gw.devices.is_empty());
/// assert!(gw.aggregate_total().total() > 0.0);
/// ```
///
/// The fleet holds only its configuration; each gateway's dense traffic is
/// rendered on demand by [`Fleet::gateway`] from a per-gateway RNG stream.
/// That keeps whole-fleet experiments at one-gateway memory cost and makes
/// every analysis reproducible from `(config, id)`.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
}

impl Fleet {
    /// Creates a fleet with the given configuration.
    pub fn new(config: FleetConfig) -> Fleet {
        Fleet { config }
    }

    /// The paper-scale default fleet (196 gateways, 6 weeks).
    pub fn paper_scale() -> Fleet {
        Fleet::new(FleetConfig::default())
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of gateways.
    pub fn len(&self) -> usize {
        self.config.n_gateways
    }

    /// Whether the fleet has no gateways.
    pub fn is_empty(&self) -> bool {
        self.config.n_gateways == 0
    }

    /// Renders gateway `id`.
    ///
    /// # Panics
    /// Panics if `id >= len()`.
    pub fn gateway(&self, id: usize) -> SimGateway {
        assert!(id < self.config.n_gateways, "gateway id out of range");
        generate_gateway(&self.config, id)
    }

    /// Iterates over all gateways, rendering each lazily.
    pub fn iter(&self) -> impl Iterator<Item = SimGateway> + '_ {
        (0..self.config.n_gateways).map(move |id| self.gateway(id))
    }

    /// Ground truth for the "user survey" experiments: the resident count of
    /// the first `n` gateways (the paper surveyed 49 of its 196 homes).
    pub fn survey_residents(&self, n: usize) -> Vec<(usize, usize)> {
        (0..n.min(self.len()))
            .map(|id| (id, self.gateway(id).residents))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_rendering_is_stable() {
        let fleet = Fleet::new(FleetConfig::small());
        let a = fleet.gateway(2);
        let b = fleet.gateway(2);
        assert_eq!(a.devices.len(), b.devices.len());
        assert_eq!(a.archetype, b.archetype);
    }

    #[test]
    fn iter_covers_all() {
        let fleet = Fleet::new(FleetConfig::small());
        assert_eq!(fleet.iter().count(), fleet.len());
        assert!(!fleet.is_empty());
    }

    #[test]
    fn survey_returns_requested_size() {
        let fleet = Fleet::new(FleetConfig::small());
        let survey = fleet.survey_residents(3);
        assert_eq!(survey.len(), 3);
        for (_, residents) in survey {
            assert!((1..=4).contains(&residents));
        }
        // Requesting more than the fleet clamps.
        assert_eq!(fleet.survey_residents(100).len(), fleet.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let fleet = Fleet::new(FleetConfig::small());
        let _ = fleet.gateway(999);
    }
}
