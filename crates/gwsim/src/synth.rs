//! Lightweight synthetic gateway windows for pruning-scale experiments.
//!
//! The full fleet simulator ([`crate::fleet`]) renders per-minute traffic
//! through the device/application stack — faithful, but far too slow to
//! produce the 50k–100k gateway populations the sketch-pruning benchmarks
//! sweep. This module is the cheap substitute: one weekly window per
//! gateway, drawn from a small set of behavioral *families*. A family is an
//! activity *schedule* — which 3-hour slots of the week the household is
//! online, like the workday/evening/weekend archetypes the motif analysis
//! recovers — plus a family-specific traffic level per slot; gateways add
//! individual amplitude and multiplicative noise on top.
//!
//! Within a family, windows correlate strongly (same schedule, small
//! noise); across families the schedules are independent coin flips per
//! slot, so both value and *rank* correlations concentrate near zero
//! (±1/√len). That last property is what makes the population prunable at
//! moderate thresholds: the binding constraint of the sketch cascade is
//! Daniels' inequality `τ ≤ (2ρ + 1)/3`, which needs the Spearman bound
//! under `(3φ − 1)/2` — at φ = 0.6 that is ρ < 0.4, comfortably clear of a
//! near-zero bulk but hopeless for shape models (e.g. randomly placed
//! usage bumps) whose collisions scatter cross-family ρ across [0.3, 0.6].
//!
//! Everything is a pure function of `(SynthConfig, gateway id)` via
//! splitmix64 hashing — no RNG state, so windows can be rendered lazily,
//! in parallel, or re-rendered bit-identically on another machine. The
//! noise is continuous (ties almost surely absent), keeping the Kendall
//! tie-aware bounds in their strongest regime.

/// Configuration of the synthetic window population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of gateways (one weekly window each).
    pub n_gateways: usize,
    /// Samples per window. The default 56 is one week at 3-hour bins.
    pub series_len: usize,
    /// Bins per day — kept so callers can re-derive calendar structure.
    pub bins_per_day: usize,
    /// Number of behavioral families; gateway `id` belongs to family
    /// `id % families`.
    pub families: usize,
    /// Relative amplitude of the multiplicative per-bin noise.
    pub noise: f64,
    /// Probability that a bin is missing (`NaN`).
    pub missing_rate: f64,
    /// Seed folded into every hash.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            n_gateways: 2_000,
            series_len: 56,
            bins_per_day: 8,
            families: 32,
            noise: 0.08,
            missing_rate: 0.0,
            seed: 0x5EED_CAFE,
        }
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer. Full avalanche,
/// so consecutive inputs give statistically independent outputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash input.
fn unit(z: u64) -> f64 {
    (splitmix64(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// The family's noise-free traffic level at bin `b`.
///
/// Each bin is independently *active* with the family's duty cycle.
/// Active bins carry a family-specific level in `[0.6, 1.4]` (streaming
/// vs. browsing evenings differ); idle bins carry background in
/// `[0.02, 0.06]`, its per-bin variation wide enough (±50%) that the
/// within-family ordering of idle bins is set by the schedule, not by
/// per-gateway noise — which keeps ranks family-deterministic and the
/// rank-domain sketch bounds tight.
fn family_level(cfg: &SynthConfig, family: usize, b: usize) -> f64 {
    let key = cfg.seed ^ 0xFA41_17E5 ^ (family as u64).wrapping_mul(0x100_0000_01B3);
    // Duty cycle in [0.35, 0.6]: households are online a minority-to-half
    // of the week's slots.
    let duty = 0.35 + 0.25 * unit(key);
    let bin_key = key.wrapping_add((b as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    if unit(bin_key) < duty {
        0.6 + 0.8 * unit(bin_key.wrapping_add(1))
    } else {
        0.02 + 0.04 * unit(bin_key.wrapping_add(2))
    }
}

/// Renders the weekly window of gateway `id` under `cfg`.
///
/// Deterministic: the same `(cfg, id)` always yields the same window.
pub fn synthetic_window(cfg: &SynthConfig, id: usize) -> Vec<f64> {
    assert!(cfg.families > 0, "families must be positive");
    assert!(cfg.series_len > 0, "series_len must be positive");
    let family = id % cfg.families;
    let gw_key = cfg.seed ^ 0x6A7E_44A7 ^ (id as u64).wrapping_mul(0x9E37_79B9);
    // Per-gateway traffic volume; cor() is scale-invariant, so this only
    // proves the pipeline never relies on absolute amplitude.
    let amplitude = 2_000.0 * (0.5 + 1.5 * unit(gw_key));
    (0..cfg.series_len)
        .map(|b| {
            let bin_key = gw_key.wrapping_add(0x51_7E11 + (b as u64).wrapping_mul(0x85EB_CA6B));
            if cfg.missing_rate > 0.0 && unit(bin_key.wrapping_add(7)) < cfg.missing_rate {
                return f64::NAN;
            }
            // Multiplicative continuous noise: ties almost surely absent.
            let jitter = 1.0 + cfg.noise * (2.0 * unit(bin_key) - 1.0);
            amplitude * family_level(cfg, family, b) * jitter
        })
        .collect()
}

/// Renders every gateway's window: `out[id] = synthetic_window(cfg, id)`.
pub fn synthetic_windows(cfg: &SynthConfig) -> Vec<Vec<f64>> {
    (0..cfg.n_gateways)
        .map(|id| synthetic_window(cfg, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_stats::sketch::{prune_pair, CorSketch, SketchConfig};
    use wtts_stats::CorProfile;

    #[test]
    fn deterministic_and_well_formed() {
        let cfg = SynthConfig {
            n_gateways: 8,
            ..SynthConfig::default()
        };
        let a = synthetic_windows(&cfg);
        let b = synthetic_windows(&cfg);
        assert_eq!(a, b);
        for w in &a {
            assert_eq!(w.len(), cfg.series_len);
            assert!(w.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        // Different seeds change the data.
        let other = synthetic_window(&SynthConfig { seed: 1, ..cfg }, 0);
        assert_ne!(a[0], other);
    }

    #[test]
    fn missing_rate_produces_nans() {
        let cfg = SynthConfig {
            n_gateways: 4,
            missing_rate: 0.25,
            ..SynthConfig::default()
        };
        let windows = synthetic_windows(&cfg);
        let nan = windows.iter().flatten().filter(|v| v.is_nan()).count();
        let total = cfg.n_gateways * cfg.series_len;
        assert!(nan > total / 10 && nan < total / 2, "nan count {nan}");
    }

    #[test]
    fn same_family_correlates_cross_family_does_not() {
        let cfg = SynthConfig {
            n_gateways: 64,
            ..SynthConfig::default()
        };
        let windows = synthetic_windows(&cfg);
        // Gateways 0 and 32 share family 0; 0 and 1 do not.
        let same = wtts_stats::pearson(&windows[0], &windows[32]).value;
        let cross = wtts_stats::pearson(&windows[0], &windows[1]).value;
        assert!(same > 0.9, "within-family pearson {same}");
        assert!(cross < 0.5, "cross-family pearson {cross}");
    }

    #[test]
    fn population_prunes_heavily_at_moderate_threshold() {
        // The property the pruning benchmarks depend on: at φ = 0.6 the
        // sketch tier dismisses ≥ 90% of pairs without exact work.
        let cfg = SynthConfig {
            n_gateways: 400,
            ..SynthConfig::default()
        };
        let windows = synthetic_windows(&cfg);
        let profiles: Vec<CorProfile> = windows.iter().map(|w| CorProfile::new(w)).collect();
        let sketch_cfg = SketchConfig::default();
        let sketches: Vec<CorSketch> = profiles
            .iter()
            .map(|p| CorSketch::from_profile(p, &sketch_cfg))
            .collect();
        let mut pruned = 0u64;
        let mut total = 0u64;
        for i in 0..sketches.len() {
            for j in (i + 1)..sketches.len() {
                total += 1;
                if prune_pair(&sketches[i], &sketches[j], 0.6).is_some() {
                    pruned += 1;
                }
            }
        }
        let rate = pruned as f64 / total as f64;
        assert!(rate >= 0.90, "prune rate {rate:.3} below 0.90");
        // And the within-family pairs survive: not everything is pruned.
        assert!(rate < 1.0, "pruning dismissed every pair");
    }
}
