//! Trace export: dump simulated gateways in the measurement-report format
//! the paper's collection server stores, so the synthetic dataset can feed
//! external tools.
//!
//! Two formats:
//!
//! * **per-minute CSV** — one row per `(gateway, device, minute)` with the
//!   decoded byte counts (`NaN` rows are skipped, like absent reports);
//! * **cumulative-counter CSV** — the raw form gateways actually report:
//!   monotone per-device byte counters sampled each minute, which
//!   `wtts_timeseries::CounterTrace` can decode back.

use crate::gateway::SimGateway;
use std::io::{self, Write};

/// Writes the device inventory of a gateway: id, MAC, name, ground-truth
/// type and inferred type.
pub fn write_inventory_csv(gw: &SimGateway, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "gateway,device,mac,name,true_type,inferred_type")?;
    for (i, d) in gw.devices.iter().enumerate() {
        writeln!(
            out,
            "{},{},{},{:?},{},{}",
            gw.id,
            i,
            d.spec.mac,
            d.spec.name,
            d.spec.true_type,
            d.inferred_type()
        )?;
    }
    Ok(())
}

/// Writes per-minute decoded traffic rows:
/// `gateway,device,minute,bytes_in,bytes_out`. Minutes where the device did
/// not report are omitted.
pub fn write_traffic_csv(gw: &SimGateway, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "gateway,device,minute,bytes_in,bytes_out")?;
    for (i, d) in gw.devices.iter().enumerate() {
        for (m, (&bi, &bo)) in d
            .incoming
            .values()
            .iter()
            .zip(d.outgoing.values())
            .enumerate()
        {
            if bi.is_finite() || bo.is_finite() {
                writeln!(
                    out,
                    "{},{},{},{:.0},{:.0}",
                    gw.id,
                    i,
                    m,
                    bi.max(0.0),
                    bo.max(0.0)
                )?;
            }
        }
    }
    Ok(())
}

/// Writes raw cumulative-counter reports:
/// `gateway,device,minute,cum_in,cum_out` — the wire format of the paper's
/// deployment. Counters restart from zero after a reporting gap, mimicking
/// a device re-associating.
pub fn write_counter_csv(gw: &SimGateway, out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "gateway,device,minute,cum_in,cum_out")?;
    for (i, d) in gw.devices.iter().enumerate() {
        let mut cum_in = 0u64;
        let mut cum_out = 0u64;
        let mut was_present = false;
        for (m, (&bi, &bo)) in d
            .incoming
            .values()
            .iter()
            .zip(d.outgoing.values())
            .enumerate()
        {
            let present = bi.is_finite() || bo.is_finite();
            if present {
                if !was_present {
                    // Re-association resets the device counter.
                    cum_in = 0;
                    cum_out = 0;
                }
                cum_in += bi.max(0.0) as u64;
                cum_out += bo.max(0.0) as u64;
                writeln!(out, "{},{},{},{},{}", gw.id, i, m, cum_in, cum_out)?;
            }
            was_present = present;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use crate::fleet::Fleet;
    use wtts_timeseries::{CounterTrace, Minute};

    fn small_gateway() -> SimGateway {
        Fleet::new(FleetConfig {
            n_gateways: 1,
            weeks: 1,
            ..FleetConfig::default()
        })
        .gateway(0)
    }

    #[test]
    fn inventory_lists_every_device() {
        let gw = small_gateway();
        let mut buf = Vec::new();
        write_inventory_csv(&gw, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), gw.devices.len() + 1);
        assert!(text.starts_with("gateway,device,mac,name"));
    }

    #[test]
    fn traffic_rows_match_observations() {
        let gw = small_gateway();
        let mut buf = Vec::new();
        write_traffic_csv(&gw, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let expected: usize = gw
            .devices
            .iter()
            .map(|d| {
                d.incoming
                    .values()
                    .iter()
                    .zip(d.outgoing.values())
                    .filter(|(a, b)| a.is_finite() || b.is_finite())
                    .count()
            })
            .sum();
        assert_eq!(text.lines().count(), expected + 1);
    }

    #[test]
    fn counter_roundtrip_through_counter_trace() {
        let gw = small_gateway();
        let mut buf = Vec::new();
        write_counter_csv(&gw, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Decode device 0's incoming counter back into per-minute deltas and
        // compare with the simulator's series (within contiguous presence
        // runs after the first reported minute).
        let mut trace = CounterTrace::new();
        for line in text.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            if cols[1] != "0" {
                continue;
            }
            let minute: u32 = cols[2].parse().unwrap();
            let cum: u64 = cols[3].parse().unwrap();
            trace.push(Minute(minute), cum);
        }
        assert!(!trace.is_empty());
        let device = &gw.devices[0];
        let decoded = trace.to_per_minute(Minute(0), device.incoming.len());
        let mut checked = 0usize;
        for m in 1..device.incoming.len() {
            let orig_prev = device.incoming.values()[m - 1];
            let orig = device.incoming.values()[m];
            let dec = decoded.values()[m];
            // Only check strictly contiguous observed pairs (gaps reset
            // counters and accumulate the delta elsewhere).
            if orig.is_finite() && orig_prev.is_finite() && dec.is_finite() {
                assert!(
                    (dec - orig.floor()).abs() <= 1.0,
                    "minute {m}: decoded {dec} vs original {orig}"
                );
                checked += 1;
            }
        }
        assert!(
            checked > 1000,
            "too few contiguous minutes checked: {checked}"
        );
    }
}
