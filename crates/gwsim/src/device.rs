//! Device specifications: identity, ownership, background profile.

use crate::rng::{chance, lognormal_median};
use rand::Rng;
use wtts_devid::registry::oui_registry;
use wtts_devid::{DeviceType, MacAddress, Oui};

/// The role a device plays in its household; decides type, naming, presence
/// and traffic share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceRole {
    /// A resident's smartphone — portable, leaves home with its owner.
    Phone,
    /// A resident's laptop — fixed class, mostly home.
    Laptop,
    /// A resident's tablet — portable, mostly home.
    Tablet,
    /// The household desktop — fixed, always connected.
    Desktop,
    /// Smart TV / streaming box — always connected.
    SmartTv,
    /// Game console — always connected.
    Console,
    /// Printer, extender or similar network equipment.
    Peripheral,
    /// A visitor's portable device, present only on a few days.
    Guest,
}

impl DeviceRole {
    /// The true device class of this role.
    pub fn device_type(self) -> DeviceType {
        match self {
            DeviceRole::Phone | DeviceRole::Tablet | DeviceRole::Guest => DeviceType::Portable,
            DeviceRole::Laptop | DeviceRole::Desktop => DeviceType::Fixed,
            DeviceRole::SmartTv => DeviceType::SmartTv,
            DeviceRole::Console => DeviceType::GameConsole,
            DeviceRole::Peripheral => DeviceType::NetworkEquipment,
        }
    }

    /// Whether the device follows its owner in and out of the home.
    pub fn is_portable(self) -> bool {
        matches!(
            self,
            DeviceRole::Phone | DeviceRole::Tablet | DeviceRole::Guest
        )
    }
}

/// Full specification of one simulated device — everything needed to render
/// its traffic series.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// User-assigned device name reported by the gateway (possibly generic).
    pub name: String,
    /// MAC address; the OUI is consistent with the true type.
    pub mac: MacAddress,
    /// Ground-truth class (the classifier's target).
    pub true_type: DeviceType,
    /// Household role.
    pub role: DeviceRole,
    /// Owning resident index, `None` for shared devices.
    pub owner: Option<usize>,
    /// Whether the owner commutes away on weekdays (affects presence).
    pub owner_employed: bool,
    /// Median background traffic per direction, bytes/minute.
    pub background_median: f64,
    /// Relative share of household sessions routed to this device.
    pub session_weight: f64,
    /// For guests: the day range (inclusive start, exclusive end, in days
    /// since epoch) during which the device is present.
    pub guest_days: Option<(u32, u32)>,
}

const FIRST_NAMES: [&str; 16] = [
    "katy", "john", "marie", "paul", "sophie", "lucas", "emma", "hugo", "lea", "nathan", "chloe",
    "louis", "ines", "jules", "eva", "tom",
];

/// Draws a MAC address whose OUI matches the device type.
///
/// Ambiguous vendors (Apple, Samsung) are mixed in for portables and fixed
/// machines so the classifier has to rely on names for a realistic share of
/// devices.
pub fn sample_mac(rng: &mut impl Rng, ty: DeviceType) -> MacAddress {
    let reg = oui_registry();
    let mut candidates: Vec<Oui> = match ty {
        DeviceType::Portable => {
            let mut v = reg.prefixes_of_type(DeviceType::Portable);
            v.extend(reg.prefixes_of_vendor("Apple, Inc."));
            v.extend(reg.prefixes_of_vendor("Samsung Electronics Co., Ltd."));
            v
        }
        DeviceType::Fixed => {
            let mut v = reg.prefixes_of_type(DeviceType::Fixed);
            v.extend(reg.prefixes_of_vendor("Apple, Inc."));
            v
        }
        other => reg.prefixes_of_type(other),
    };
    if candidates.is_empty() {
        candidates.push(Oui([0xFE, 0x00, 0x00]));
    }
    let oui = candidates[rng.gen_range(0..candidates.len())];
    MacAddress::new([
        oui.0[0],
        oui.0[1],
        oui.0[2],
        rng.gen(),
        rng.gen(),
        rng.gen(),
    ])
}

/// Generates a plausible user-assigned name for the role; a fraction of
/// devices gets a generic, uninformative name so that the classified
/// population contains `unlabeled` devices like the paper's.
pub fn sample_name(rng: &mut impl Rng, role: DeviceRole) -> String {
    // ~30% generic names (the paper ends up with ~26% unlabeled dominants).
    if chance(rng, 0.30) {
        return format!("device-{:04x}", rng.gen::<u16>());
    }
    let person = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    match role {
        DeviceRole::Phone | DeviceRole::Guest => {
            let model = ["iPhone", "galaxy", "android", "xperia"][rng.gen_range(0..4)];
            format!("{person}s-{model}")
        }
        DeviceRole::Tablet => {
            let model = ["ipad", "tablet", "kindle"][rng.gen_range(0..3)];
            format!("{person}-{model}")
        }
        DeviceRole::Laptop => {
            let model = ["macbook", "laptop", "thinkpad", "notebook"][rng.gen_range(0..4)];
            format!("{model}-{person}")
        }
        DeviceRole::Desktop => ["family-desktop", "office-pc", "gaming-desktop", "imac-home"]
            [rng.gen_range(0..4)]
        .to_string(),
        DeviceRole::SmartTv => ["living-room-tv", "samsung tv", "appletv", "bedroom-tv"]
            [rng.gen_range(0..4)]
        .to_string(),
        DeviceRole::Console => {
            ["PS4", "xbox-one", "nintendo-wii", "playstation3"][rng.gen_range(0..4)].to_string()
        }
        DeviceRole::Peripheral => [
            "epson-printer",
            "wifi-extender",
            "hall-repeater",
            "home-nas",
        ][rng.gen_range(0..4)]
        .to_string(),
    }
}

/// Draws the per-device median background traffic (bytes/minute, per
/// direction), matching the paper's Figure 4: most devices below 5000 B/min,
/// portables lowest, a heavy tail of fixed machines above 40 000.
pub fn sample_background_median(rng: &mut impl Rng, ty: DeviceType) -> f64 {
    match ty {
        DeviceType::Portable => lognormal_median(rng, 450.0, 0.6),
        DeviceType::Fixed => {
            if chance(rng, 0.10) {
                // Heavy updaters / seeders: often beyond 40 kB/min.
                lognormal_median(rng, 30_000.0, 0.5)
            } else {
                lognormal_median(rng, 1_800.0, 0.7)
            }
        }
        DeviceType::SmartTv => lognormal_median(rng, 350.0, 0.6),
        DeviceType::GameConsole => lognormal_median(rng, 500.0, 0.7),
        DeviceType::NetworkEquipment => lognormal_median(rng, 900.0, 0.9),
        DeviceType::Unlabeled => lognormal_median(rng, 800.0, 1.0),
    }
}

/// Builds a full device specification.
pub fn make_device(
    rng: &mut impl Rng,
    role: DeviceRole,
    owner: Option<usize>,
    owner_employed: bool,
    session_weight: f64,
    guest_days: Option<(u32, u32)>,
) -> DeviceSpec {
    let ty = role.device_type();
    DeviceSpec {
        name: sample_name(rng, role),
        mac: sample_mac(rng, ty),
        true_type: ty,
        role,
        owner,
        owner_employed,
        background_median: sample_background_median(rng, ty),
        session_weight,
        guest_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn role_types() {
        assert_eq!(DeviceRole::Phone.device_type(), DeviceType::Portable);
        assert_eq!(DeviceRole::Desktop.device_type(), DeviceType::Fixed);
        assert_eq!(DeviceRole::Console.device_type(), DeviceType::GameConsole);
        assert!(DeviceRole::Guest.is_portable());
        assert!(!DeviceRole::SmartTv.is_portable());
    }

    #[test]
    fn macs_match_type_vendors() {
        let mut r = rng();
        for _ in 0..50 {
            let mac = sample_mac(&mut r, DeviceType::GameConsole);
            let vendor = oui_registry().lookup(mac.oui()).expect("known vendor");
            assert_eq!(vendor.default_type, Some(DeviceType::GameConsole));
        }
    }

    #[test]
    fn names_usually_classifiable() {
        let mut r = rng();
        let n = 500;
        let mut classified = 0;
        for _ in 0..n {
            let spec = make_device(&mut r, DeviceRole::Phone, Some(0), true, 1.0, None);
            let inferred = wtts_devid::classify(spec.mac, &spec.name);
            if inferred == DeviceType::Portable {
                classified += 1;
            }
        }
        // Names are informative ~70% of the time; OUI rescues a share of the
        // rest, so the majority classify correctly but not all.
        let frac = classified as f64 / n as f64;
        assert!(frac > 0.6 && frac < 0.98, "classified fraction {frac}");
    }

    #[test]
    fn background_medians_match_figure4() {
        let mut r = rng();
        let n = 2_000;
        let portables: Vec<f64> = (0..n)
            .map(|_| sample_background_median(&mut r, DeviceType::Portable))
            .collect();
        let fixed: Vec<f64> = (0..n)
            .map(|_| sample_background_median(&mut r, DeviceType::Fixed))
            .collect();
        let below_5k = |v: &[f64]| v.iter().filter(|&&x| x <= 5_000.0).count() as f64 / n as f64;
        assert!(
            below_5k(&portables) > 0.95,
            "portables sit in the small group"
        );
        let fixed_large = fixed.iter().filter(|&&x| x > 40_000.0).count() as f64 / n as f64;
        assert!(
            fixed_large > 0.01 && fixed_large < 0.15,
            "a small share of fixed devices is heavy: {fixed_large}"
        );
        // Fixed clearly heavier than portable on average.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&fixed) > 2.0 * mean(&portables));
    }

    #[test]
    fn device_spec_construction() {
        let mut r = rng();
        let spec = make_device(&mut r, DeviceRole::Guest, None, false, 0.5, Some((3, 5)));
        assert_eq!(spec.true_type, DeviceType::Portable);
        assert_eq!(spec.guest_days, Some((3, 5)));
        assert!(spec.background_median > 0.0);
    }
}
