//! Application traffic profiles.
//!
//! Sessions carry traffic shaped by the application driving them: video
//! streaming pulls megabytes per minute downstream, uploads push upstream,
//! browsing is bursty and light. Per-minute rates are calibrated so that
//! active traffic reaches the 10⁶–10⁷ bytes/minute range visible in the
//! paper's Figure 1 while staying below typical access-link capacity.

use rand::Rng;

/// The kind of application behind a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProfile {
    /// Video streaming (Netflix-style): heavy, smooth downstream.
    Streaming,
    /// Web browsing / social networking: light, bursty.
    Browsing,
    /// Video conferencing: symmetric medium rate.
    VideoCall,
    /// Online gaming: modest, steady, latency-bound.
    Gaming,
    /// Bulk upload (photo/video backup): heavy upstream.
    Upload,
    /// Bulk download (file transfer, updates): heavy downstream.
    Download,
}

impl AppProfile {
    /// All profiles.
    pub const ALL: [AppProfile; 6] = [
        AppProfile::Streaming,
        AppProfile::Browsing,
        AppProfile::VideoCall,
        AppProfile::Gaming,
        AppProfile::Upload,
        AppProfile::Download,
    ];

    /// Mean downstream bytes per minute while the session is active.
    pub fn rate_in(self) -> f64 {
        match self {
            // ~4 Mbps video ≈ 3e7 B/min.
            AppProfile::Streaming => 2.2e7,
            AppProfile::Browsing => 1.2e6,
            AppProfile::VideoCall => 7.0e6,
            AppProfile::Gaming => 1.5e6,
            AppProfile::Upload => 3.0e5,
            AppProfile::Download => 2.8e7,
        }
    }

    /// Ratio of upstream to downstream bytes.
    pub fn out_ratio(self) -> f64 {
        match self {
            AppProfile::Streaming => 0.07,
            AppProfile::Browsing => 0.12,
            AppProfile::VideoCall => 0.30,
            AppProfile::Gaming => 0.25,
            AppProfile::Upload => 2.0,
            AppProfile::Download => 0.06,
        }
    }

    /// Per-minute multiplicative jitter shape: how bursty the app is within
    /// a session (σ of the log-normal factor).
    pub fn burstiness(self) -> f64 {
        match self {
            AppProfile::Streaming => 0.25,
            AppProfile::Browsing => 0.9,
            AppProfile::VideoCall => 0.2,
            AppProfile::Gaming => 0.4,
            AppProfile::Upload => 0.3,
            AppProfile::Download => 0.35,
        }
    }

    /// Typical session length scale in minutes (Pareto scale parameter).
    pub fn duration_scale(self) -> f64 {
        match self {
            AppProfile::Streaming => 45.0,
            AppProfile::Browsing => 5.0,
            AppProfile::VideoCall => 15.0,
            AppProfile::Gaming => 30.0,
            AppProfile::Upload => 8.0,
            AppProfile::Download => 6.0,
        }
    }

    /// Draws an application for a session, given whether the device is a
    /// game console (consoles overwhelmingly game or stream).
    pub fn sample(rng: &mut impl Rng, is_console: bool, is_tv: bool) -> AppProfile {
        let weights: [f64; 6] = if is_console {
            [0.25, 0.05, 0.0, 0.65, 0.0, 0.05]
        } else if is_tv {
            [0.90, 0.05, 0.0, 0.0, 0.0, 0.05]
        } else {
            [0.28, 0.38, 0.10, 0.06, 0.03, 0.15]
        };
        AppProfile::ALL[crate::rng::weighted_index(rng, &weights)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rates_are_positive_and_ordered() {
        for app in AppProfile::ALL {
            assert!(app.rate_in() > 0.0);
            assert!(app.out_ratio() > 0.0);
            assert!(app.burstiness() > 0.0);
            assert!(app.duration_scale() > 0.0);
        }
        assert!(AppProfile::Streaming.rate_in() > AppProfile::Browsing.rate_in() * 10.0);
        assert!(AppProfile::Upload.out_ratio() > 1.0, "upload is out-heavy");
        assert!(
            AppProfile::Streaming.out_ratio() < 0.1,
            "streaming is in-heavy"
        );
    }

    #[test]
    fn console_sessions_game() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 5_000;
        let games = (0..n)
            .filter(|_| AppProfile::sample(&mut rng, true, false) == AppProfile::Gaming)
            .count();
        assert!(
            games as f64 / n as f64 > 0.5,
            "consoles mostly game: {games}"
        );
    }

    #[test]
    fn tv_sessions_stream() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 5_000;
        let streams = (0..n)
            .filter(|_| AppProfile::sample(&mut rng, false, true) == AppProfile::Streaming)
            .count();
        assert!(streams as f64 / n as f64 > 0.8);
    }

    #[test]
    fn general_devices_mix() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(AppProfile::sample(&mut rng, false, false));
        }
        assert_eq!(seen.len(), 6, "all app kinds appear on general devices");
    }

    #[test]
    fn streaming_session_reaches_papers_magnitudes() {
        // The paper's Figure 1 shows active traffic up to ~2.5e7 B/min.
        assert!(AppProfile::Streaming.rate_in() > 1e7);
        assert!(AppProfile::Streaming.rate_in() < 1e8);
    }
}
