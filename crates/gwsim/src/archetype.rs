//! Household behavior archetypes.
//!
//! The paper's motifs describe recurring weekly and daily usage patterns:
//! heavy-weekend users, everyday evening users, workday users (Figure 11);
//! afternoon, late-evening, morning-and-evening and all-day users
//! (Figure 14). Archetypes encode those behaviors generatively: each
//! household gets an archetype that shapes *when* its members go online, so
//! the motif-discovery pipeline has real structure to find.

use rand::Rng;
use wtts_timeseries::Weekday;

/// The behavioral archetype of a household.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HouseholdArchetype {
    /// Online every evening (the most common pattern in the paper's daily
    /// motifs).
    EveningRegulars,
    /// Active during working hours on weekdays — home office.
    WorkdayUsers,
    /// Quiet weekdays, heavy Saturday/Sunday usage.
    HeavyWeekend,
    /// Two activity bursts: before work and in the evening.
    MorningEvening,
    /// Sustained moderate usage from morning to late evening.
    AllDay,
    /// Afternoon block, e.g. children back from school.
    Afternoon,
    /// Activity starting late in the evening and spilling past midnight.
    LateNight,
    /// No recognizable pattern; low-rate noise.
    Irregular,
}

impl HouseholdArchetype {
    /// All archetypes.
    pub const ALL: [HouseholdArchetype; 8] = [
        HouseholdArchetype::EveningRegulars,
        HouseholdArchetype::WorkdayUsers,
        HouseholdArchetype::HeavyWeekend,
        HouseholdArchetype::MorningEvening,
        HouseholdArchetype::AllDay,
        HouseholdArchetype::Afternoon,
        HouseholdArchetype::LateNight,
        HouseholdArchetype::Irregular,
    ];

    /// Population weights: roughly the prevalence each pattern needs for the
    /// motif support distribution to resemble the paper's (evening usage
    /// dominates; the rest form a long tail).
    pub fn population_weights() -> [f64; 8] {
        [0.24, 0.14, 0.15, 0.12, 0.10, 0.09, 0.08, 0.08]
    }

    /// Draws an archetype from the population distribution.
    pub fn sample(rng: &mut impl Rng) -> HouseholdArchetype {
        let idx = crate::rng::weighted_index(rng, &Self::population_weights());
        Self::ALL[idx]
    }

    /// Relative activity level of a whole day (multiplies the session rate).
    pub fn day_weight(self, day: Weekday) -> f64 {
        let weekend = day.is_weekend();
        match self {
            HouseholdArchetype::EveningRegulars => 1.0,
            HouseholdArchetype::WorkdayUsers => {
                if weekend {
                    0.25
                } else {
                    1.0
                }
            }
            HouseholdArchetype::HeavyWeekend => {
                if weekend {
                    1.8
                } else if day == Weekday::Friday {
                    0.7
                } else {
                    0.3
                }
            }
            HouseholdArchetype::MorningEvening => 1.0,
            HouseholdArchetype::AllDay => 1.2,
            HouseholdArchetype::Afternoon => {
                if weekend {
                    0.8
                } else {
                    1.0
                }
            }
            HouseholdArchetype::LateNight => 1.0,
            HouseholdArchetype::Irregular => 0.6,
        }
    }

    /// Relative weight of each hour of the day for session starts.
    ///
    /// The returned array need not be normalized; it is consumed by a
    /// weighted choice. Hours are local, `0..24`.
    pub fn hour_weights(self, day: Weekday) -> [f64; 24] {
        let mut w = [0.05f64; 24]; // Faint baseline everywhere.
        let weekend = day.is_weekend();
        match self {
            HouseholdArchetype::EveningRegulars => {
                bump(&mut w, 18, 23, 1.0);
                bump(&mut w, 12, 14, 0.15);
            }
            HouseholdArchetype::WorkdayUsers => {
                if weekend {
                    bump(&mut w, 10, 20, 0.15);
                } else {
                    bump(&mut w, 9, 18, 1.0);
                    bump(&mut w, 20, 22, 0.25);
                }
            }
            HouseholdArchetype::HeavyWeekend => {
                if weekend {
                    bump(&mut w, 9, 24, 1.0);
                } else {
                    bump(&mut w, 19, 22, 0.35);
                }
            }
            HouseholdArchetype::MorningEvening => {
                bump(&mut w, 6, 9, 0.9);
                bump(&mut w, 19, 23, 1.0);
            }
            HouseholdArchetype::AllDay => {
                bump(&mut w, 8, 23, 1.0);
            }
            HouseholdArchetype::Afternoon => {
                bump(&mut w, 14, 18, 1.0);
                bump(&mut w, 19, 21, 0.3);
            }
            HouseholdArchetype::LateNight => {
                bump(&mut w, 21, 24, 1.0);
                bump(&mut w, 0, 2, 0.8);
            }
            HouseholdArchetype::Irregular => {
                // Flat; the baseline already covers it.
                bump(&mut w, 0, 24, 0.2);
            }
        }
        w
    }

    /// Whether sessions of this archetype lean toward portable devices.
    ///
    /// The paper finds weekend and short morning/evening usage dominated by
    /// portables, while sustained weekday/all-day usage comes from fixed
    /// machines (Sections 7.2.1–7.2.2).
    pub fn portable_affinity(self) -> f64 {
        match self {
            HouseholdArchetype::HeavyWeekend => 2.0,
            HouseholdArchetype::MorningEvening => 2.2,
            HouseholdArchetype::LateNight => 1.8,
            HouseholdArchetype::EveningRegulars => 1.4,
            HouseholdArchetype::Afternoon => 1.5,
            HouseholdArchetype::WorkdayUsers => 0.5,
            HouseholdArchetype::AllDay => 0.55,
            HouseholdArchetype::Irregular => 1.0,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            HouseholdArchetype::EveningRegulars => "evening",
            HouseholdArchetype::WorkdayUsers => "workday",
            HouseholdArchetype::HeavyWeekend => "weekend",
            HouseholdArchetype::MorningEvening => "morning+evening",
            HouseholdArchetype::AllDay => "all-day",
            HouseholdArchetype::Afternoon => "afternoon",
            HouseholdArchetype::LateNight => "late-night",
            HouseholdArchetype::Irregular => "irregular",
        }
    }
}

impl std::fmt::Display for HouseholdArchetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Adds `amount` to the half-open hour range `[from, to)`.
fn bump(w: &mut [f64; 24], from: usize, to: usize, amount: f64) {
    for slot in w.iter_mut().take(to).skip(from) {
        *slot += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weights_cover_all_archetypes() {
        let w = HouseholdArchetype::population_weights();
        assert_eq!(w.len(), HouseholdArchetype::ALL.len());
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn sampling_matches_population_roughly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            *counts
                .entry(HouseholdArchetype::sample(&mut rng))
                .or_insert(0usize) += 1;
        }
        let evening = counts[&HouseholdArchetype::EveningRegulars] as f64 / n as f64;
        assert!((evening - 0.24).abs() < 0.02, "evening share = {evening}");
        assert_eq!(counts.len(), 8, "every archetype appears");
    }

    #[test]
    fn evening_archetype_peaks_in_the_evening() {
        let w = HouseholdArchetype::EveningRegulars.hour_weights(Weekday::Tuesday);
        assert!(w[20] > w[10] * 5.0);
        assert!(w[20] > w[3] * 5.0);
    }

    #[test]
    fn weekend_archetype_day_weights() {
        let a = HouseholdArchetype::HeavyWeekend;
        assert!(a.day_weight(Weekday::Saturday) > 4.0 * a.day_weight(Weekday::Tuesday));
        assert!(a.day_weight(Weekday::Friday) > a.day_weight(Weekday::Tuesday));
    }

    #[test]
    fn workday_archetype_flips_on_weekends() {
        let a = HouseholdArchetype::WorkdayUsers;
        let weekday = a.hour_weights(Weekday::Wednesday);
        let weekend = a.hour_weights(Weekday::Sunday);
        assert!(weekday[11] > weekend[11] * 3.0);
    }

    #[test]
    fn late_night_spills_past_midnight() {
        let w = HouseholdArchetype::LateNight.hour_weights(Weekday::Friday);
        assert!(w[23] > w[12] * 5.0);
        assert!(w[1] > w[12] * 4.0);
    }

    #[test]
    fn portable_affinity_ordering() {
        // Weekend/morning-evening users lean portable, workday/all-day lean
        // fixed — the paper's key device-type finding.
        assert!(
            HouseholdArchetype::HeavyWeekend.portable_affinity()
                > HouseholdArchetype::WorkdayUsers.portable_affinity() * 2.0
        );
        assert!(
            HouseholdArchetype::MorningEvening.portable_affinity()
                > HouseholdArchetype::AllDay.portable_affinity() * 2.0
        );
    }

    #[test]
    fn hour_weights_are_positive() {
        for a in HouseholdArchetype::ALL {
            for d in Weekday::ALL {
                assert!(a.hour_weights(d).iter().all(|&w| w > 0.0));
            }
        }
    }
}
