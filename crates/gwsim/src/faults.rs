//! Deterministic I/O fault schedules for durability testing.
//!
//! The companion of [`crate::crash`]: where `kill_points` decides *when a
//! process dies*, this module decides *which disk operations fail* —
//! transient EIO, short writes, a full volume, an fsync that lies, a
//! rename torn between unlink and link. The schedule is a pure function
//! of `(seed, op_horizon, n)` (splitmix64, no RNG state), so a failing
//! fault-injection run replays bit-for-bit from its seed.
//!
//! The fault *kinds* are deliberately a local enum rather than a
//! dependency on the ingest crate: the simulator stays decoupled, and the
//! durable layer maps [`FaultOp`] onto its own injector types at the call
//! site.

use crate::crash::splitmix64;

/// The disk failure mode of one scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// The write fails with `EIO`, nothing written.
    WriteEio,
    /// The write lands short (partial buffer).
    WriteShort,
    /// The write fails with `ENOSPC`.
    WriteEnospc,
    /// `fsync` reports success without persisting.
    SyncLies,
    /// The rename unlinks the destination but fails before linking.
    RenameTorn,
}

/// All fault kinds, in the order [`fault_schedule`] cycles through them.
pub const FAULT_OPS: [FaultOp; 5] = [
    FaultOp::WriteEio,
    FaultOp::WriteShort,
    FaultOp::WriteEnospc,
    FaultOp::SyncLies,
    FaultOp::RenameTorn,
];

/// One scheduled fault: fire `kind` on the `op`-th I/O operation (the
/// injector's global write/sync/rename counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based index into the I/O operation sequence.
    pub op: u64,
    /// What goes wrong.
    pub kind: FaultOp,
}

/// `n` faults over the first `op_horizon` I/O operations, sorted by op
/// index, deduplicated, deterministic in `(seed, op_horizon, n)`. Op
/// indices are biased toward the early sequence (where WAL headers and
/// first snapshots live) the same way [`crate::crash::kill_points`]
/// biases its edges; kinds cycle through [`FAULT_OPS`] shuffled by the
/// seed so every schedule of 5+ faults exercises every failure mode.
pub fn fault_schedule(seed: u64, op_horizon: u64, n: usize) -> Vec<FaultEvent> {
    if op_horizon == 0 || n == 0 {
        return Vec::new();
    }
    let mut events: Vec<FaultEvent> = Vec::with_capacity(n);
    let rot = (splitmix64(seed ^ 0xFA17_5EED) % FAULT_OPS.len() as u64) as usize;
    for i in 0..n {
        let h = splitmix64(seed ^ 0xD15C_FA17 ^ (i as u64).wrapping_mul(0x100_0000_01B3));
        let op = match i {
            // The very first operations: header writes and the first
            // flush — the places where a fault leaves the least behind.
            0 => h % op_horizon.div_ceil(10).max(1),
            _ => h % op_horizon,
        };
        let kind = FAULT_OPS[(rot + i) % FAULT_OPS.len()];
        events.push(FaultEvent { op, kind });
    }
    events.sort_by_key(|e| e.op);
    events.dedup_by_key(|e| e.op);
    events
}

/// A contiguous `ENOSPC` storm over ops `[start, start + len)` — long
/// enough a burst defeats any bounded retry budget deterministically,
/// forcing the degraded path rather than hoping a seed happens to cluster.
pub fn enospc_storm(start: u64, len: u64) -> Vec<FaultEvent> {
    (start..start.saturating_add(len))
        .map(|op| FaultEvent {
            op,
            kind: FaultOp::WriteEnospc,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sorted_and_in_range() {
        let a = fault_schedule(9, 500, 8);
        let b = fault_schedule(9, 500, 8);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|e| e.op < 500));
        assert!(a.windows(2).all(|w| w[0].op < w[1].op));
        assert_ne!(a, fault_schedule(10, 500, 8), "seed matters");
    }

    #[test]
    fn all_kinds_covered_at_five_plus() {
        let events = fault_schedule(3, 10_000, 12);
        for kind in FAULT_OPS {
            assert!(
                events.iter().any(|e| e.kind == kind),
                "{kind:?} missing from a 12-fault schedule"
            );
        }
    }

    #[test]
    fn storm_is_contiguous_enospc() {
        let storm = enospc_storm(40, 6);
        assert_eq!(storm.len(), 6);
        assert!(storm.iter().all(|e| e.kind == FaultOp::WriteEnospc));
        assert_eq!(storm.first().unwrap().op, 40);
        assert_eq!(storm.last().unwrap().op, 45);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fault_schedule(1, 0, 4).is_empty());
        assert!(fault_schedule(1, 100, 0).is_empty());
        assert!(enospc_storm(7, 0).is_empty());
    }
}
