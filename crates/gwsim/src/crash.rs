//! Deterministic crash schedules for durability testing.
//!
//! A recovery path is only as trustworthy as the crash points it has been
//! exercised at. This module generates seeded, reproducible kill points
//! over a report stream of known length, so a crash-recovery test can die
//! at "interesting" places — immediately, mid-stream, a report before the
//! end — and replay the exact same schedule when a failure needs
//! debugging. Pure splitmix64 hashing, same idiom as [`crate::synth`]: no
//! RNG state, identical output on every machine.

/// splitmix64: the standard 64-bit finalizer-style mixer (see
/// [`crate::synth`] for the rationale).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `n` distinct kill points over a stream of `stream_len` reports, sorted
/// ascending, each in `[1, stream_len]` ("die after offering this many
/// reports"). The first and last points are biased toward the edges — the
/// empty-WAL and almost-done crashes are where recovery bugs hide — and
/// the rest spread uniformly. Deterministic in `(seed, stream_len, n)`.
///
/// Returns fewer than `n` points when `stream_len` is too short to keep
/// them distinct; an empty vec when `stream_len == 0`.
pub fn kill_points(seed: u64, stream_len: u64, n: usize) -> Vec<u64> {
    if stream_len == 0 || n == 0 {
        return Vec::new();
    }
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let h = splitmix64(seed ^ 0xC4A5_11ED ^ (i as u64).wrapping_mul(0x100_0000_01B3));
        let p = match i {
            // An early crash: almost nothing durable yet.
            0 => 1 + h % stream_len.div_ceil(20).max(1),
            // A late crash: almost everything durable.
            1 if stream_len > 1 => stream_len - h % stream_len.div_ceil(20).max(1),
            // The rest spread over the whole stream.
            _ => 1 + h % stream_len,
        };
        points.push(p.clamp(1, stream_len));
    }
    points.sort_unstable();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let a = kill_points(7, 10_000, 5);
        let b = kill_points(7, 10_000, 5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&p| (1..=10_000).contains(&p)));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert_ne!(a, kill_points(8, 10_000, 5), "seed matters");
    }

    #[test]
    fn edges_are_covered() {
        let pts = kill_points(42, 100_000, 6);
        assert!(pts.first().unwrap() <= &5_000, "an early kill point");
        assert!(pts.last().unwrap() >= &95_000, "a late kill point");
    }

    #[test]
    fn degenerate_lengths() {
        assert!(kill_points(1, 0, 4).is_empty());
        assert_eq!(kill_points(1, 1, 3), vec![1]);
        assert!(kill_points(1, 2, 8).len() <= 2);
    }
}
