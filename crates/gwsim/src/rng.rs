//! Distribution samplers over a plain `rand` RNG.
//!
//! The workspace only depends on `rand` (no `rand_distr`), so the handful of
//! distributions the traffic model needs — normal, log-normal, Pareto,
//! Poisson, categorical — are implemented here from their textbook
//! definitions.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// Log-normal sample parameterized by the *median* and the shape σ
/// (standard deviation of the underlying normal).
///
/// `median * exp(σ Z)` — parameterizing by the median keeps traffic-model
/// constants interpretable ("median background is 800 B/min").
pub fn lognormal_median(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    median * (sigma * normal(rng)).exp()
}

/// Pareto sample with scale `xm` and shape `alpha`, optionally capped.
///
/// Heavy-tailed session durations are the standard model for human activity
/// burstiness (Section 2 of the paper cites the inhomogeneity of human
/// activity timing).
pub fn pareto(rng: &mut impl Rng, xm: f64, alpha: f64, cap: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (xm / u.powf(1.0 / alpha)).min(cap)
}

/// Poisson sample via Knuth's product method (fine for the small λ used by
/// per-day session counts), with a normal approximation above λ = 30.
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal_with(rng, lambda, lambda.sqrt());
        return x.max(0.0).round() as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Weighted index choice: returns `i` with probability `weights[i] / Σw`.
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && !weights.is_empty(),
        "weights must be non-empty with positive sum"
    );
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Bernoulli draw.
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_median_is_the_median() {
        let mut r = rng();
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n)
            .map(|_| lognormal_median(&mut r, 800.0, 1.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[n / 2];
        assert!((med / 800.0 - 1.0).abs() < 0.1, "median = {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut r = rng();
        for _ in 0..5_000 {
            let x = pareto(&mut r, 4.0, 1.3, 240.0);
            assert!((4.0..=240.0).contains(&x), "x = {x}");
        }
        // Heavy tail: a visible fraction of draws lands above 10x the scale.
        let big = (0..5_000)
            .filter(|_| pareto(&mut r, 4.0, 1.3, 240.0) > 40.0)
            .count();
        assert!(big > 100, "tail too light: {big}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 3.0, 8.0, 50.0] {
            let n = 10_000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, lambda) as u64).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.06,
                "lambda {lambda}, mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_index_rejects_zero_weights() {
        let mut r = rng();
        let _ = weighted_index(&mut r, &[0.0, 0.0]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = rng();
        assert!(!chance(&mut r, 0.0));
        assert!(chance(&mut r, 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(normal(&mut a), normal(&mut b));
        }
    }
}
