//! Per-gateway trace generation.
//!
//! A gateway trace is a deterministic function of `(FleetConfig, gateway
//! id)`: the generator derives a private RNG stream per gateway, so a fleet
//! never needs to hold more than one gateway's dense series in memory at a
//! time, and experiments can re-generate any gateway reproducibly.

use crate::apps::AppProfile;
use crate::archetype::HouseholdArchetype;
use crate::config::FleetConfig;
use crate::device::{make_device, DeviceRole, DeviceSpec};
use crate::rng::{chance, lognormal_median, normal, pareto, poisson, weighted_index};
use crate::wifi::{apply_airtime_contention, PhyRate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wtts_devid::DeviceType;
use wtts_timeseries::{Minute, TimeSeries, MINUTES_PER_DAY, MINUTES_PER_WEEK};

/// Access technology of the gateway's WAN link.
///
/// The paper's deployment: 67% fiber (92% of those at 100/10 Mbps, the rest
/// 30/3) and 33% ADSL at 24/1 Mbps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessTech {
    /// 100/10 Mbps fiber.
    Fiber100,
    /// 30/3 Mbps fiber.
    Fiber30,
    /// 24/1 Mbps ADSL.
    Adsl24,
}

impl AccessTech {
    /// Downstream capacity in bytes per minute.
    pub fn downstream_cap(self) -> f64 {
        let mbps = match self {
            AccessTech::Fiber100 => 100.0,
            AccessTech::Fiber30 => 30.0,
            AccessTech::Adsl24 => 24.0,
        };
        mbps * 1e6 / 8.0 * 60.0
    }

    /// Upstream capacity in bytes per minute.
    pub fn upstream_cap(self) -> f64 {
        let mbps = match self {
            AccessTech::Fiber100 => 10.0,
            AccessTech::Fiber30 => 3.0,
            AccessTech::Adsl24 => 1.0,
        };
        mbps * 1e6 / 8.0 * 60.0
    }

    /// Draws an access technology; `adsl_share` of gateways get ADSL and
    /// the fiber remainder splits 92% / 8% between 100/10 and 30/3, the
    /// paper deployment's mix.
    pub fn sample(rng: &mut impl Rng, adsl_share: f64) -> AccessTech {
        let fiber = 1.0 - adsl_share.clamp(0.0, 1.0);
        match weighted_index(
            rng,
            &[fiber * 0.92, fiber * 0.08, adsl_share.clamp(0.0, 1.0)],
        ) {
            0 => AccessTech::Fiber100,
            1 => AccessTech::Fiber30,
            _ => AccessTech::Adsl24,
        }
    }
}

/// Reporting reliability class of a gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reliability {
    /// Reports essentially every minute.
    Reliable,
    /// A handful of whole-day gaps (excluded from daily analyses).
    FlakyDays,
    /// A week-scale gap — late joiner or long outage (excluded from weekly
    /// analyses too).
    FlakyWeeks,
}

/// One simulated device with its rendered traffic.
#[derive(Debug, Clone)]
pub struct SimDevice {
    /// Identity, ownership and traffic profile.
    pub spec: DeviceSpec,
    /// The device's WiFi link rate class.
    pub phy_rate: PhyRate,
    /// Per-minute incoming (downstream) bytes; `NaN` when not connected.
    pub incoming: TimeSeries,
    /// Per-minute outgoing (upstream) bytes; `NaN` when not connected.
    pub outgoing: TimeSeries,
}

impl SimDevice {
    /// Overall per-minute traffic (incoming + outgoing).
    pub fn total(&self) -> TimeSeries {
        self.incoming.add(&self.outgoing)
    }

    /// The device class the paper's heuristic would infer from the MAC and
    /// name (ground truth is `spec.true_type`).
    pub fn inferred_type(&self) -> DeviceType {
        wtts_devid::classify(self.spec.mac, &self.spec.name)
    }
}

/// A fully rendered gateway: household metadata plus every device's series.
#[derive(Debug, Clone)]
pub struct SimGateway {
    /// Gateway index within the fleet.
    pub id: usize,
    /// Household behavior archetype.
    pub archetype: HouseholdArchetype,
    /// Number of residents (ground truth for the survey experiments).
    pub residents: usize,
    /// Behavioral regularity in `[0, 1]`; high values produce strongly
    /// stationary traffic.
    pub regularity: f64,
    /// WAN access technology.
    pub access: AccessTech,
    /// Reporting reliability class.
    pub reliability: Reliability,
    /// All devices ever connected during the observation window.
    pub devices: Vec<SimDevice>,
}

impl SimGateway {
    /// Aggregated per-minute incoming traffic over all devices.
    pub fn aggregate_incoming(&self) -> TimeSeries {
        TimeSeries::sum_all(self.devices.iter().map(|d| &d.incoming)).expect("gateway has devices")
    }

    /// Aggregated per-minute outgoing traffic over all devices.
    pub fn aggregate_outgoing(&self) -> TimeSeries {
        TimeSeries::sum_all(self.devices.iter().map(|d| &d.outgoing)).expect("gateway has devices")
    }

    /// Aggregated overall traffic (incoming + outgoing), the series the
    /// paper calls "the gateway traffic".
    pub fn aggregate_total(&self) -> TimeSeries {
        self.aggregate_incoming().add(&self.aggregate_outgoing())
    }

    /// Number of connected (reporting) devices per minute.
    pub fn connected_devices(&self) -> TimeSeries {
        let n = self.devices.first().map(|d| d.incoming.len()).unwrap_or(0);
        let mut counts = vec![0.0f64; n];
        for d in &self.devices {
            for (c, v) in counts.iter_mut().zip(d.incoming.values()) {
                if v.is_finite() {
                    *c += 1.0;
                }
            }
        }
        TimeSeries::per_minute(counts)
    }
}

/// Deterministically generates gateway `id` of the fleet described by
/// `config`.
pub fn generate_gateway(config: &FleetConfig, id: usize) -> SimGateway {
    let mut rng =
        SmallRng::seed_from_u64(config.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let minutes = config.minutes();
    let days = config.weeks * 7;

    let residents = 1 + weighted_index(&mut rng, &[0.30, 0.35, 0.20, 0.15]);
    let archetype = HouseholdArchetype::sample(&mut rng);
    let regularity = if chance(&mut rng, 0.30) {
        rng.gen_range(0.80..0.97)
    } else {
        rng.gen_range(0.25..0.80)
    };
    let access = AccessTech::sample(&mut rng, config.adsl_share);
    let reliability = match weighted_index(
        &mut rng,
        &[
            1.0 - config.flaky_day_fraction - config.flaky_week_fraction,
            config.flaky_day_fraction,
            config.flaky_week_fraction,
        ],
    ) {
        0 => Reliability::Reliable,
        1 => Reliability::FlakyDays,
        _ => Reliability::FlakyWeeks,
    };

    let specs = build_household_devices(&mut rng, config, residents);
    let gateway_outage = build_outage_mask(&mut rng, reliability, days, minutes);

    // Render every device: presence, background, then sessions on top.
    let mut devices: Vec<RenderedDevice> = specs
        .into_iter()
        .map(|spec| render_device(&mut rng, spec, minutes, &gateway_outage, regularity))
        .collect();

    generate_sessions(
        &mut rng,
        config,
        archetype,
        regularity,
        residents,
        &mut devices,
        days,
    );
    generate_solo_sessions(&mut rng, &mut devices, minutes, regularity);

    // The WLAN is a shared medium: assign each device a PHY rate class and
    // scale any oversubscribed minute by the common contention factor
    // (Section 3: traffic "is bounded by the wireless effective
    // throughput").
    let rates: Vec<PhyRate> = devices
        .iter()
        .map(|d| PhyRate::sample(&mut rng, d.spec.role.is_portable()))
        .collect();
    let mut slot: Vec<(f64, f64)> = vec![(f64::NAN, f64::NAN); devices.len()];
    for m in 0..minutes {
        for (k, d) in devices.iter().enumerate() {
            slot[k] = (d.incoming[m], d.outgoing[m]);
        }
        if apply_airtime_contention(&mut slot, &rates) < 1.0 {
            for (k, d) in devices.iter_mut().enumerate() {
                d.incoming[m] = slot[k].0;
                d.outgoing[m] = slot[k].1;
            }
        }
    }

    // Clamp to access capacity and freeze into TimeSeries.
    let down_cap = access.downstream_cap();
    let up_cap = access.upstream_cap();
    let devices = devices
        .into_iter()
        .zip(rates)
        .map(|(d, phy_rate)| {
            let mut incoming = d.incoming;
            let mut outgoing = d.outgoing;
            for v in incoming.iter_mut() {
                if v.is_finite() && *v > down_cap {
                    *v = down_cap;
                }
            }
            for v in outgoing.iter_mut() {
                if v.is_finite() && *v > up_cap {
                    *v = up_cap;
                }
            }
            SimDevice {
                spec: d.spec,
                phy_rate,
                incoming: TimeSeries::per_minute(incoming),
                outgoing: TimeSeries::per_minute(outgoing),
            }
        })
        .collect();

    SimGateway {
        id,
        archetype,
        residents,
        regularity,
        access,
        reliability,
        devices,
    }
}

/// Intermediate mutable device state during rendering.
struct RenderedDevice {
    spec: DeviceSpec,
    /// Presence per minute (false = not connected, series value NaN).
    present: Vec<bool>,
    incoming: Vec<f64>,
    outgoing: Vec<f64>,
}

/// Draws the household's device population.
fn build_household_devices(
    rng: &mut impl Rng,
    config: &FleetConfig,
    residents: usize,
) -> Vec<DeviceSpec> {
    let mut specs = Vec::new();
    for r in 0..residents {
        let employed = chance(rng, 0.65);
        let lead = r == 0;
        specs.push(make_device(
            rng,
            DeviceRole::Phone,
            Some(r),
            employed,
            if lead { 2.0 } else { 1.0 },
            None,
        ));
        if chance(rng, 0.60) {
            specs.push(make_device(
                rng,
                DeviceRole::Laptop,
                Some(r),
                employed,
                if lead { 1.8 } else { 0.9 },
                None,
            ));
        }
        if chance(rng, 0.30) {
            specs.push(make_device(
                rng,
                DeviceRole::Tablet,
                Some(r),
                employed,
                0.7,
                None,
            ));
        }
    }
    if chance(rng, 0.50) {
        specs.push(make_device(
            rng,
            DeviceRole::Desktop,
            None,
            false,
            2.2,
            None,
        ));
    }
    if chance(rng, 0.45) {
        specs.push(make_device(
            rng,
            DeviceRole::SmartTv,
            None,
            false,
            0.45,
            None,
        ));
    }
    if chance(rng, 0.25) {
        specs.push(make_device(
            rng,
            DeviceRole::Console,
            None,
            false,
            0.5,
            None,
        ));
    }
    if chance(rng, 0.35) {
        specs.push(make_device(
            rng,
            DeviceRole::Peripheral,
            None,
            false,
            0.05,
            None,
        ));
    }
    // Transient guests.
    let total_days = config.weeks * 7;
    let guests = poisson(rng, config.guest_rate);
    for _ in 0..guests {
        let stay = rng.gen_range(1..=4u32).min(total_days);
        let first = rng.gen_range(0..=(total_days - stay));
        specs.push(make_device(
            rng,
            DeviceRole::Guest,
            None,
            false,
            0.25,
            Some((first, first + stay)),
        ));
    }
    // Emphasize one primary device: households have a device that dominates
    // their traffic (Section 6.2 finds a dominant device in nearly every
    // home).
    if let Some(primary) = specs
        .iter_mut()
        .filter(|s| s.guest_days.is_none())
        .max_by(|a, b| {
            a.session_weight
                .partial_cmp(&b.session_weight)
                .expect("finite")
        })
    {
        primary.session_weight *= 4.0;
    }
    specs
}

/// Builds the gateway-wide outage mask (true = not reporting).
fn build_outage_mask(
    rng: &mut impl Rng,
    reliability: Reliability,
    days: u32,
    minutes: usize,
) -> Vec<bool> {
    let mut mask = vec![false; minutes];
    match reliability {
        Reliability::Reliable => {}
        Reliability::FlakyDays => {
            let k = rng.gen_range(1..=4usize);
            for _ in 0..k {
                let day = rng.gen_range(0..days) as usize;
                let start = day * MINUTES_PER_DAY as usize;
                for m in mask.iter_mut().skip(start).take(MINUTES_PER_DAY as usize) {
                    *m = true;
                }
            }
        }
        Reliability::FlakyWeeks => {
            // Late joiner: the gateway appears only after a week-scale delay.
            let max_gap = (days - 7).max(8);
            let gap_days = rng.gen_range(7..=max_gap.min(21)) as usize;
            for m in mask.iter_mut().take(gap_days * MINUTES_PER_DAY as usize) {
                *m = true;
            }
        }
    }
    // Everyone: occasional short outages (1-4 hours).
    let weeks = days / 7;
    for w in 0..weeks {
        if chance(rng, 0.15) {
            let len = rng.gen_range(60..=240usize);
            let week_start = w as usize * 7 * MINUTES_PER_DAY as usize;
            let offset = rng.gen_range(0..7 * MINUTES_PER_DAY as usize - len);
            for m in mask.iter_mut().skip(week_start + offset).take(len) {
                *m = true;
            }
        }
    }
    mask
}

/// Renders presence and background traffic for one device.
fn render_device(
    rng: &mut impl Rng,
    spec: DeviceSpec,
    minutes: usize,
    gateway_outage: &[bool],
    regularity: f64,
) -> RenderedDevice {
    let mut present = vec![true; minutes];

    // Guests exist only within their stay, 10:00–23:00.
    if let Some((d0, d1)) = spec.guest_days {
        for (m, p) in present.iter_mut().enumerate() {
            let minute = Minute(m as u32);
            let day = minute.day();
            let hour = minute.hour();
            *p = day >= d0 && day < d1 && (10..23).contains(&hour);
        }
    } else if spec.role.is_portable() {
        for day in 0..(minutes / MINUTES_PER_DAY as usize) {
            let day_start = day * MINUTES_PER_DAY as usize;
            let weekday = Minute(day_start as u32).weekday();
            // Commuting owner: phone leaves on weekdays ~8:30–17:30.
            if spec.role == DeviceRole::Phone && spec.owner_employed && !weekday.is_weekend() {
                let leave = 8 * 60 + 30 + rng.gen_range(-40i32..40);
                let back = 17 * 60 + 30 + rng.gen_range(-40i32..60);
                for t in leave.max(0)..back.min(MINUTES_PER_DAY as i32) {
                    present[day_start + t as usize] = false;
                }
            }
            // Overnight radio-off: most nights the portable disconnects
            // from WiFi entirely, so the gateway stops reporting it — the
            // connected-device count follows the household's waking hours.
            if chance(rng, 0.75) {
                let sleep_from = 23 * 60 + rng.gen_range(0..90) as usize;
                let wake_at = 6 * 60 + rng.gen_range(0..90) as usize;
                for t in sleep_from..MINUTES_PER_DAY as usize {
                    present[day_start + t] = false;
                }
                // The early hours of the *next* day.
                let next = day_start + MINUTES_PER_DAY as usize;
                for t in 0..wake_at {
                    if next + t < minutes {
                        present[next + t] = false;
                    }
                }
            }
        }
    }

    // Entertainment boxes power off overnight (and mostly stay off during
    // weekday working hours) — the connected-device count breathes with the
    // household's waking rhythm.
    if matches!(spec.role, DeviceRole::SmartTv | DeviceRole::Console) && chance(rng, 0.8) {
        for day in 0..(minutes / MINUTES_PER_DAY as usize) {
            let day_start = day * MINUTES_PER_DAY as usize;
            let weekday = Minute(day_start as u32).weekday();
            let on_from = if weekday.is_weekend() {
                9 * 60 + rng.gen_range(0..120)
            } else {
                15 * 60 + rng.gen_range(0..120)
            } as usize;
            for t in 0..on_from {
                present[day_start + t] = false;
            }
        }
    }

    // Gateway outages override everything.
    for (p, &out) in present.iter_mut().zip(gateway_outage) {
        if out {
            *p = false;
        }
    }

    // Background traffic on present minutes, modulated by a per-device
    // circadian cycle with its own phase (a shared day/night step across
    // devices would fabricate cross-device correlation that the paper's
    // data does not have).
    let mut incoming = vec![f64::NAN; minutes];
    let mut outgoing = vec![f64::NAN; minutes];
    let in_median = spec.background_median;
    let out_median = spec.background_median * 0.6;
    let portable = spec.role.is_portable();
    let phase = rng.gen_range(0.0..24.0);
    // Heavy background producers (always-on PCs syncing, seeding, polling)
    // emit a near-constant stream. A constant adds nothing to the rank
    // ordering of the gateway total, so these machines do not read as
    // "dominant" unless they also host real sessions — matching the paper,
    // where most gateways have exactly one dominant device.
    let steady = in_median > 1_500.0;
    let sigma = if steady { 0.12 } else { 0.3 };
    let amplitude = if steady { 0.05 } else { 0.25 };
    // Background level drifts from week to week (OS updates roll out, apps
    // change their polling) — one reason raw traffic fails the KS check of
    // strong stationarity while *active* traffic passes it (Section 6.1's
    // 7% -> 11% stationarity gain from background removal).
    let weeks = minutes.div_ceil(MINUTES_PER_WEEK as usize);
    let drift_sigma = (0.32 * (1.15 - regularity)).max(0.04);
    let week_factor: Vec<f64> = (0..weeks)
        .map(|_| lognormal_median(rng, 1.0, drift_sigma))
        .collect();
    for m in 0..minutes {
        if !present[m] {
            continue;
        }
        let hour = Minute(m as u32).hour() as f64;
        let circadian =
            1.0 - amplitude + amplitude * ((hour - phase) * std::f64::consts::TAU / 24.0).cos();
        let week = m / MINUTES_PER_WEEK as usize;
        let mut bi = lognormal_median(rng, in_median, sigma) * circadian * week_factor[week];
        // Upstream background tracks downstream (ACKs, sync chatter) with
        // its own jitter — the paper's in/out correlation (~0.92) holds in
        // the background mass as well.
        let mut bo = bi * (out_median / in_median) * lognormal_median(rng, 1.0, 0.3);
        // Background is intermittent, not smooth: most minutes carry only
        // faint control chatter, with periodic sync bursts (mail checks,
        // feed refreshes) reaching the device's characteristic level. The
        // chatter/sync alternation is independent across devices, so no
        // single device's background dictates the gateway's idle-minute
        // rank order.
        let doze_p = match spec.role {
            _ if steady => 0.0,
            DeviceRole::Peripheral => 0.35,
            _ if portable => 0.60,
            _ => 0.50,
        };
        if chance(rng, doze_p) {
            bi *= 0.05;
            bo *= 0.05;
        }
        if chance(rng, 0.004) {
            // Software update / sync burst.
            let burst = rng.gen_range(8.0..25.0);
            bi *= burst;
            bo *= burst * 0.3;
        }
        incoming[m] = bi;
        outgoing[m] = bo;
    }

    RenderedDevice {
        spec,
        present,
        incoming,
        outgoing,
    }
}

/// Per-device solo activity: podcasts on the phone during a commute break,
/// cloud syncs, solitary browsing — bursts independent of the household
/// rhythm. This idiosyncratic variance is what keeps marginally-involved
/// devices *below* the dominance threshold in real traffic.
fn generate_solo_sessions(
    rng: &mut impl Rng,
    devices: &mut [RenderedDevice],
    minutes: usize,
    regularity: f64,
) {
    let days = minutes / MINUTES_PER_DAY as usize;
    for device in devices.iter_mut() {
        if device.spec.role == DeviceRole::Peripheral {
            continue;
        }
        for day in 0..days {
            let n = poisson(rng, 1.2 * (1.0 - 0.7 * regularity));
            for _ in 0..n {
                let start =
                    day * MINUTES_PER_DAY as usize + rng.gen_range(0..MINUTES_PER_DAY as usize);
                if !device.present[start] {
                    continue;
                }
                // Mostly light apps, occasionally a solo stream.
                let app = match weighted_index(rng, &[0.55, 0.25, 0.20]) {
                    0 => AppProfile::Browsing,
                    1 => AppProfile::Download,
                    _ => AppProfile::Streaming,
                };
                let duration = pareto(rng, app.duration_scale() * 0.6, 1.5, 120.0) as usize;
                let rate_in = app.rate_in() * (0.5 * normal(rng)).exp() * 0.5;
                for m in start..(start + duration).min(minutes) {
                    if !device.present[m] {
                        break;
                    }
                    let minute_in = rate_in * (app.burstiness() * normal(rng)).exp();
                    let minute_out = minute_in * app.out_ratio() * (0.3 * normal(rng)).exp();
                    device.incoming[m] = device.incoming[m].max(0.0) + minute_in;
                    device.outgoing[m] = device.outgoing[m].max(0.0) + minute_out;
                }
            }
        }
    }
}

/// Generates household sessions and accumulates their traffic onto the
/// devices.
#[allow(clippy::too_many_arguments)]
fn generate_sessions(
    rng: &mut impl Rng,
    config: &FleetConfig,
    archetype: HouseholdArchetype,
    regularity: f64,
    residents: usize,
    devices: &mut [RenderedDevice],
    days: u32,
) {
    let minutes = config.minutes();
    let sigma_day = (1.0 - regularity) * 0.9;
    // Residents are active at individually shifted hours (the paper:
    // "different users are active during different periods of time"), with
    // the lead resident carrying most sessions — that concentration is what
    // makes one device dominate a gateway (Section 6.2).
    let resident_offsets: Vec<i32> = (0..residents)
        .map(|r| {
            if r == 0 {
                0
            } else {
                [-3, -2, 2, 3][rng.gen_range(0..4)]
            }
        })
        .collect();
    // The household's favorite hour: regular homes go online at the same
    // time every day, irregular ones spread across the archetype's window.
    let peak_hour = {
        let base_weights = archetype.hour_weights(wtts_timeseries::Weekday::Wednesday);
        weighted_index(rng, &base_weights) as f64
    };
    let habit_width = 7.0 - 5.5 * regularity; // hours
                                              // A regular household also has a regular media diet — the same show at
                                              // the same hour pulls the same bytes, stabilizing window magnitudes.
    let habit_app = AppProfile::sample(rng, false, false);
    let resident_weights: Vec<f64> = (0..residents)
        .map(|r| if r == 0 { 1.8 } else { 1.0 })
        .collect();
    // Each resident has one favorite ("main") device hosting the bulk of
    // their sessions — one person drives one screen at a time, which is why
    // one-resident homes in the paper always show exactly one dominant
    // device.
    let main_device: Vec<Option<usize>> = (0..residents)
        .map(|r| {
            // Prefer the resident's own devices; fall back to shared ones
            // only when they own none. Distinct residents then concentrate
            // on distinct devices, so the dominant-device count tracks the
            // resident count in small households (Section 6.2).
            let own: Vec<(usize, f64)> = devices
                .iter()
                .enumerate()
                .filter(|(_, d)| d.spec.guest_days.is_none() && d.spec.owner == Some(r))
                .map(|(i, d)| (i, d.spec.session_weight))
                .collect();
            let candidates: Vec<(usize, f64)> = if own.is_empty() {
                devices
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.spec.guest_days.is_none() && d.spec.owner.is_none())
                    .map(|(i, d)| (i, d.spec.session_weight))
                    .collect()
            } else {
                own
            };
            if candidates.is_empty() {
                return None;
            }
            let weights: Vec<f64> = candidates.iter().map(|&(_, w)| w).collect();
            Some(candidates[weighted_index(rng, &weights)].0)
        })
        .collect();
    // Non-main devices are used in their own characteristic daypart (the
    // tablet on the sofa in the morning, the console late at night), so
    // their traffic does not shadow the main device's rhythm.
    let device_offsets: Vec<i32> = (0..devices.len())
        .map(|i| {
            if main_device.contains(&Some(i)) {
                0
            } else {
                [-5, -3, 3, 5][rng.gen_range(0..4)]
            }
        })
        .collect();
    for day in 0..days {
        let day_start = day as usize * MINUTES_PER_DAY as usize;
        let weekday = Minute(day_start as u32).weekday();
        let day_jitter = (sigma_day * normal(rng)).exp();
        let lambda = config.base_sessions_per_day
            * archetype.day_weight(weekday)
            * (0.6 + 0.4 * residents as f64)
            * day_jitter;
        // Regular households repeat the same session count day after day;
        // irregular ones fluctuate with full Poisson noise.
        let n_sessions = if chance(rng, regularity) {
            lambda.round() as u32
        } else {
            poisson(rng, lambda)
        };
        // Regular households keep fixed habits: concentrate the hour weights
        // around the household's favorite hour, which is what makes their
        // windows strongly stationary (Definition 2).
        let mut hour_weights = archetype.hour_weights(weekday);
        for (h, w) in hour_weights.iter_mut().enumerate() {
            let mut dist = (h as f64 - peak_hour).abs();
            dist = dist.min(24.0 - dist);
            *w *= (-0.5 * (dist / habit_width).powi(2)).exp();
        }
        for _ in 0..n_sessions {
            let resident = weighted_index(rng, &resident_weights);
            let hour = (weighted_index(rng, &hour_weights) as i32 + resident_offsets[resident])
                .rem_euclid(24) as usize;
            let start = day_start + hour * 60 + rng.gen_range(0..60);
            if start >= minutes {
                continue;
            }
            // Pick a device present at the session start, among this
            // resident's own devices and the shared household devices.
            let evening_or_weekend = hour >= 18 || weekday.is_weekend();
            let weights: Vec<f64> = devices
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    if !d.present[start] {
                        return 0.0;
                    }
                    match d.spec.owner {
                        Some(o) if o != resident => return 0.0,
                        _ => {}
                    }
                    let mut w = d.spec.session_weight;
                    if main_device[resident] == Some(i) {
                        w *= 25.0;
                    }
                    if d.spec.role.is_portable() {
                        w *= archetype.portable_affinity();
                        if evening_or_weekend {
                            w *= 1.5;
                        }
                    } else if !evening_or_weekend {
                        w *= 1.3;
                    }
                    w
                })
                .collect();
            if weights.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let chosen = weighted_index(rng, &weights);
            let start = (start as i64 + device_offsets[chosen] as i64 * 60)
                .clamp(0, minutes as i64 - 1) as usize;
            let device = &mut devices[chosen];
            let is_console = device.spec.true_type == DeviceType::GameConsole;
            let is_tv = device.spec.true_type == DeviceType::SmartTv;
            let app = if !is_console && !is_tv && chance(rng, regularity * 0.85) {
                habit_app
            } else {
                AppProfile::sample(rng, is_console, is_tv)
            };
            let duration = pareto(rng, app.duration_scale(), 1.4, 300.0) as usize;
            let session_scale = (0.5 * (1.2 - regularity) * normal(rng)).exp();
            let rate_in = app.rate_in() * session_scale;
            let out_ratio = app.out_ratio();
            for m in start..(start + duration).min(minutes) {
                if !device.present[m] {
                    break;
                }
                let minute_in = rate_in * (app.burstiness() * normal(rng)).exp();
                let minute_out = minute_in * out_ratio * (0.3 * normal(rng)).exp();
                device.incoming[m] = device.incoming[m].max(0.0) + minute_in;
                device.outgoing[m] = device.outgoing[m].max(0.0) + minute_out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtts_stats::pearson;

    fn small_gateway(id: usize) -> SimGateway {
        generate_gateway(&FleetConfig::small(), id)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_gateway(3);
        let b = small_gateway(3);
        assert_eq!(a.residents, b.residents);
        assert_eq!(a.devices.len(), b.devices.len());
        assert_eq!(
            a.devices[0].incoming.values()[..100],
            b.devices[0].incoming.values()[..100]
        );
    }

    #[test]
    fn different_ids_differ() {
        let a = small_gateway(1);
        let b = small_gateway(2);
        // Extremely unlikely to coincide in both metadata and first values.
        let same_meta = a.residents == b.residents
            && a.archetype == b.archetype
            && a.devices.len() == b.devices.len();
        let same_data =
            a.devices[0].incoming.values()[..50] == b.devices[0].incoming.values()[..50];
        assert!(!(same_meta && same_data));
    }

    #[test]
    fn every_gateway_has_devices_and_traffic() {
        for id in 0..8 {
            let gw = small_gateway(id);
            assert!(!gw.devices.is_empty(), "gateway {id} has no devices");
            let total = gw.aggregate_total();
            assert!(total.observed_count() > 0, "gateway {id} has no traffic");
            assert!(total.total() > 0.0);
            assert!((1..=4).contains(&gw.residents));
        }
    }

    #[test]
    fn series_cover_configured_window() {
        let config = FleetConfig::small();
        let gw = generate_gateway(&config, 0);
        for d in &gw.devices {
            assert_eq!(d.incoming.len(), config.minutes());
            assert_eq!(d.outgoing.len(), config.minutes());
            assert_eq!(d.incoming.step_minutes(), 1);
        }
    }

    #[test]
    fn in_out_strongly_correlated() {
        // Section 4.1: mean in/out correlation across gateways ~0.92.
        let mut cors = Vec::new();
        for id in 0..8 {
            let gw = small_gateway(id);
            let inc = gw.aggregate_incoming();
            let out = gw.aggregate_outgoing();
            let r = pearson(inc.values(), out.values());
            if r.n > 100 {
                cors.push(r.value);
            }
        }
        let mean = cors.iter().sum::<f64>() / cors.len() as f64;
        assert!(mean > 0.6, "mean in/out correlation too low: {mean}");
    }

    #[test]
    fn guests_only_present_during_stay() {
        for id in 0..8 {
            let gw = small_gateway(id);
            for d in &gw.devices {
                if let Some((d0, d1)) = d.spec.guest_days {
                    for (m, v) in d.incoming.values().iter().enumerate() {
                        if v.is_finite() {
                            let day = Minute(m as u32).day();
                            assert!(
                                day >= d0 && day < d1,
                                "guest observed outside its stay (gw {id})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn late_joiners_miss_leading_weeks() {
        let config = FleetConfig {
            n_gateways: 40,
            weeks: 4,
            ..FleetConfig::default()
        };
        let mut found_flaky_week = false;
        for id in 0..config.n_gateways {
            let gw = generate_gateway(&config, id);
            if gw.reliability == Reliability::FlakyWeeks {
                found_flaky_week = true;
                let total = gw.aggregate_total();
                // First day fully missing.
                let first_day = &total.values()[..MINUTES_PER_DAY as usize];
                assert!(first_day.iter().all(|v| v.is_nan()));
            }
        }
        assert!(found_flaky_week, "no FlakyWeeks gateway in 40 draws");
    }

    #[test]
    fn capacity_respected() {
        for id in 0..4 {
            let gw = small_gateway(id);
            let down = gw.access.downstream_cap();
            let up = gw.access.upstream_cap();
            for d in &gw.devices {
                assert!(d.incoming.max().unwrap_or(0.0) <= down + 1e-6);
                assert!(d.outgoing.max().unwrap_or(0.0) <= up + 1e-6);
            }
        }
    }

    #[test]
    fn connected_devices_counts() {
        let gw = small_gateway(0);
        let counts = gw.connected_devices();
        let max = counts.max().unwrap();
        assert!(max <= gw.devices.len() as f64);
        assert!(max >= 1.0);
    }

    #[test]
    fn access_tech_caps_ordered() {
        assert!(AccessTech::Fiber100.downstream_cap() > AccessTech::Adsl24.downstream_cap());
        assert!(AccessTech::Fiber100.upstream_cap() > AccessTech::Fiber30.upstream_cap());
        // 100 Mbps = 750 MB/min.
        assert!((AccessTech::Fiber100.downstream_cap() - 7.5e8).abs() < 1.0);
    }

    #[test]
    fn commuter_phone_absent_midday() {
        // Find an employed phone owner and check weekday midday absence.
        for id in 0..8 {
            let gw = small_gateway(id);
            for d in &gw.devices {
                if d.spec.role == DeviceRole::Phone && d.spec.owner_employed {
                    // Tuesday of week 0, 12:00.
                    let idx = (MINUTES_PER_DAY + 12 * 60) as usize;
                    let v = d.incoming.values()[idx];
                    // Could be a gateway outage minute too, but in either
                    // case the device must be unobserved unless the paper's
                    // jittered commute window shifted; accept NaN or small.
                    if v.is_finite() {
                        continue;
                    }
                    return; // Found an absent commuter - test passes.
                }
            }
        }
        panic!("no commuting phone found absent at weekday noon");
    }
}
