//! Property-based tests of the simulator's guarantees.

use proptest::prelude::*;
use wtts_gwsim::{generate_gateway, Fleet, FleetConfig};

fn config(n: usize, weeks: u32, seed: u64) -> FleetConfig {
    FleetConfig {
        n_gateways: n,
        weeks,
        seed,
        ..FleetConfig::default()
    }
}

proptest! {
    // Each case renders gateways, so keep the count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation is a pure function of (config, id).
    #[test]
    fn generation_deterministic(seed in 0u64..1_000_000, id in 0usize..6) {
        let cfg = config(8, 1, seed);
        let a = generate_gateway(&cfg, id);
        let b = generate_gateway(&cfg, id);
        prop_assert_eq!(a.devices.len(), b.devices.len());
        prop_assert_eq!(a.residents, b.residents);
        prop_assert_eq!(a.archetype, b.archetype);
        for (da, db) in a.devices.iter().zip(&b.devices) {
            prop_assert_eq!(da.spec.mac, db.spec.mac);
            prop_assert_eq!(&da.spec.name, &db.spec.name);
            // NaN != NaN, so compare bit patterns.
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(da.incoming.values()), bits(db.incoming.values()));
        }
    }

    /// Every rendered series respects the configured horizon, capacity and
    /// non-negativity.
    #[test]
    fn series_bounds(seed in 0u64..1_000_000, id in 0usize..6) {
        let cfg = config(8, 1, seed);
        let gw = generate_gateway(&cfg, id);
        let down = gw.access.downstream_cap();
        let up = gw.access.upstream_cap();
        for d in &gw.devices {
            prop_assert_eq!(d.incoming.len(), cfg.minutes());
            prop_assert_eq!(d.outgoing.len(), cfg.minutes());
            for (&bi, &bo) in d.incoming.values().iter().zip(d.outgoing.values()) {
                // Presence is identical across directions.
                prop_assert_eq!(bi.is_finite(), bo.is_finite());
                if bi.is_finite() {
                    prop_assert!(bi >= 0.0 && bi <= down + 1e-6);
                    prop_assert!(bo >= 0.0 && bo <= up + 1e-6);
                }
            }
        }
    }

    /// Household composition stays within the documented ranges.
    #[test]
    fn household_shape(seed in 0u64..1_000_000) {
        let cfg = config(6, 1, seed);
        for gw in Fleet::new(cfg).iter() {
            prop_assert!((1..=4).contains(&gw.residents));
            prop_assert!((0.0..=1.0).contains(&gw.regularity));
            prop_assert!(!gw.devices.is_empty());
            prop_assert!(gw.devices.len() <= 30, "{} devices", gw.devices.len());
            // Every resident owns at least a phone.
            for r in 0..gw.residents {
                prop_assert!(
                    gw.devices.iter().any(|d| d.spec.owner == Some(r)),
                    "resident {r} owns nothing"
                );
            }
            // Guests have valid stay ranges.
            for d in &gw.devices {
                if let Some((a, b)) = d.spec.guest_days {
                    prop_assert!(a < b && b <= cfg_weeks_days(&gw));
                }
            }
        }
    }
}

fn cfg_weeks_days(gw: &wtts_gwsim::SimGateway) -> u32 {
    (gw.devices[0].incoming.len() as u32) / wtts_timeseries::MINUTES_PER_DAY
}
