//! Behavioral integration tests: the simulated households must actually
//! *behave* like their archetypes — these are the regularities the motif
//! experiments mine, so they are asserted here directly.

use wtts_gwsim::{Fleet, FleetConfig, HouseholdArchetype};
use wtts_timeseries::{Minute, TimeSeries, MINUTES_PER_DAY};

/// Collect gateways of one archetype from a fleet big enough to find them.
fn gateways_of(archetype: HouseholdArchetype, want: usize) -> Vec<TimeSeries> {
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 120,
        weeks: 2,
        seed: 0xBEAA11,
        ..FleetConfig::default()
    });
    let mut out = Vec::new();
    for gw in fleet.iter() {
        if gw.archetype == archetype && gw.regularity > 0.5 {
            out.push(gw.aggregate_total());
            if out.len() == want {
                break;
            }
        }
    }
    assert!(
        out.len() >= want.min(2),
        "found only {} gateways of {archetype:?}",
        out.len()
    );
    out
}

/// Share of a series' volume falling on weekend minutes.
fn weekend_share(s: &TimeSeries) -> f64 {
    let mut weekend = 0.0;
    let mut total = 0.0;
    for (m, &v) in s.values().iter().enumerate() {
        if v.is_finite() {
            total += v;
            if Minute(m as u32).is_weekend() {
                weekend += v;
            }
        }
    }
    if total > 0.0 {
        weekend / total
    } else {
        0.0
    }
}

/// Share of a series' volume falling in an hour band (wrapping allowed).
fn hour_share(s: &TimeSeries, from: u32, to: u32) -> f64 {
    let in_band = |h: u32| {
        if from <= to {
            (from..to).contains(&h)
        } else {
            h >= from || h < to
        }
    };
    let mut band = 0.0;
    let mut total = 0.0;
    for (m, &v) in s.values().iter().enumerate() {
        if v.is_finite() {
            total += v;
            if in_band(Minute(m as u32).hour()) {
                band += v;
            }
        }
    }
    if total > 0.0 {
        band / total
    } else {
        0.0
    }
}

#[test]
fn weekend_households_spend_weekends_online() {
    let weekendy = gateways_of(HouseholdArchetype::HeavyWeekend, 4);
    let workday = gateways_of(HouseholdArchetype::WorkdayUsers, 4);
    let avg = |v: &[TimeSeries]| v.iter().map(weekend_share).sum::<f64>() / v.len() as f64;
    let we = avg(&weekendy);
    let wd = avg(&workday);
    assert!(
        we > 0.45,
        "heavy-weekend homes should concentrate on weekends: {we:.2}"
    );
    assert!(wd < 0.35, "workday homes should not: {wd:.2}");
    assert!(we > wd + 0.2);
}

#[test]
fn evening_households_peak_in_the_evening() {
    let evening = gateways_of(HouseholdArchetype::EveningRegulars, 4);
    for s in &evening {
        let evening_share = hour_share(s, 18, 24);
        let morning_share = hour_share(s, 4, 10);
        assert!(
            evening_share > morning_share,
            "evening home favors 18-24h: {evening_share:.2} vs {morning_share:.2}"
        );
    }
}

#[test]
fn late_night_households_cross_midnight() {
    let late = gateways_of(HouseholdArchetype::LateNight, 3);
    let avg: f64 = late.iter().map(|s| hour_share(s, 21, 2)).sum::<f64>() / late.len() as f64;
    assert!(avg > 0.4, "late-night homes live at 21-02h: {avg:.2}");
}

#[test]
fn workday_households_work_the_weekdays() {
    let workday = gateways_of(HouseholdArchetype::WorkdayUsers, 4);
    let avg: f64 = workday
        .iter()
        .map(|s| {
            // Working-hour volume share restricted to weekdays.
            let mut band = 0.0;
            let mut total = 0.0;
            for (m, &v) in s.values().iter().enumerate() {
                if v.is_finite() {
                    total += v;
                    let t = Minute(m as u32);
                    if !t.is_weekend() && (9..18).contains(&t.hour()) {
                        band += v;
                    }
                }
            }
            band / total.max(1.0)
        })
        .sum::<f64>()
        / workday.len() as f64;
    assert!(avg > 0.4, "workday homes work 9-18 Mon-Fri: {avg:.2}");
}

#[test]
fn traffic_magnitudes_match_figure1() {
    // Per-minute peaks in the 1e6..1e8 range, like the paper's Figure 1b.
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 10,
        weeks: 1,
        ..FleetConfig::default()
    });
    let mut peaks = Vec::new();
    for gw in fleet.iter() {
        if let Some(max) = gw.aggregate_total().max() {
            peaks.push(max);
        }
    }
    let above_1e6 = peaks.iter().filter(|&&p| p > 1e6).count();
    assert!(above_1e6 >= 8, "most gateways see multi-MB minutes");
    assert!(peaks.iter().all(|&p| p < 2e9), "bounded by access capacity");
}

#[test]
fn nights_are_quieter_than_evenings_fleetwide() {
    let fleet = Fleet::new(FleetConfig {
        n_gateways: 30,
        weeks: 1,
        ..FleetConfig::default()
    });
    let mut night = 0.0;
    let mut evening = 0.0;
    for gw in fleet.iter() {
        let total = gw.aggregate_total();
        for (m, &v) in total.values().iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let h = (m as u32 % MINUTES_PER_DAY) / 60;
            if (2..6).contains(&h) {
                night += v;
            } else if (19..23).contains(&h) {
                evening += v;
            }
        }
    }
    assert!(
        evening > night * 3.0,
        "evenings must dominate nights: {evening:.3e} vs {night:.3e}"
    );
}
