#!/usr/bin/env bash
# CI gate: formatting, lints (warnings denied), build, the full test
# suite, bench smokes (bit-identity + observability conservation), and the
# unified perf-budget gate (scripts/perf_gate.py) over every committed
# bench baseline. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== ingest bench (smoke) =="
cargo bench -p wtts-bench --bench ingest -- --smoke

echo "== durable bench (smoke) =="
cargo bench -p wtts-bench --bench durable -- --smoke

metrics_json="$(mktemp /tmp/wtts_ci_metrics.XXXXXX.json)"
sweep_metrics_json="$(mktemp /tmp/wtts_ci_sweep_metrics.XXXXXX.json)"
prune_metrics_json="$(mktemp /tmp/wtts_ci_prune_metrics.XXXXXX.json)"
lag_metrics_json="$(mktemp /tmp/wtts_ci_lag_metrics.XXXXXX.json)"
trap 'rm -f "$metrics_json" "$sweep_metrics_json" "$prune_metrics_json" "$lag_metrics_json"' EXIT

echo "== granularity_sweep bench (smoke) =="
cargo bench -p wtts-bench --bench granularity_sweep -- --smoke --metrics-json "$sweep_metrics_json"
python3 - "$sweep_metrics_json" <<'PY'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")

with open(sys.argv[1]) as fh:
    m = json.load(fh, parse_constant=reject_nonfinite)

assert m["conserved"] is True, "stage books must balance"
assert m["quiescent"] is True, "no span may be left open"
stages = m["stages"]
for name in ("pyramid_build", "rebin", "window_score"):
    s = stages[name]
    assert s["entered"] == s["exited"] + s["in_flight"], (name, s)
    assert s["entered"] > 0, f"stage {name} never ran"
c = m["counters"]
assert c["rebins_pyramid"] + c["rebins_direct"] == stages["rebin"]["entered"], c
assert c["level_folds"] <= c["rebins_pyramid"], c
print("sweep obs ok:", c["rebins_pyramid"], "pyramid rebins,", c["level_folds"], "level folds")
PY
python3 scripts/perf_gate.py --only granularity_sweep

echo "== pruned_pairwise bench (smoke) =="
cargo bench -p wtts-bench --bench pruned_pairwise -- --smoke --metrics-json "$prune_metrics_json"
python3 - "$prune_metrics_json" <<'PY'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")

with open(sys.argv[1]) as fh:
    m = json.load(fh, parse_constant=reject_nonfinite)

assert m["conserved"] is True, "stage books must balance"
assert m["quiescent"] is True, "no span may be left open"
c = m["counters"]
pruned = (
    c["pairs_pruned_degenerate"]
    + c["pairs_pruned_sax"]
    + c["pairs_pruned_moment"]
)
assert pruned + c["prune_pairs_evaluated"] == c["prune_pairs_total"], c
rate = pruned / c["prune_pairs_total"]
assert rate >= 0.90, f"prune rate {rate:.3f} below 0.90 at phi = 0.6"
print(f"prune obs ok: {pruned} of {c['prune_pairs_total']} pairs pruned ({rate:.3f})")
PY
python3 scripts/perf_gate.py --only pruned_pairwise

echo "== lag_search bench (smoke) =="
cargo bench -p wtts-bench --bench lag_search -- --smoke --metrics-json "$lag_metrics_json"
python3 - "$lag_metrics_json" <<'PY'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")

with open(sys.argv[1]) as fh:
    m = json.load(fh, parse_constant=reject_nonfinite)

assert m["conserved"] is True, "stage books must balance"
assert m["quiescent"] is True, "no span may be left open"
c = m["counters"]
pruned = (
    c["lag_cells_pruned_degenerate"]
    + c["lag_cells_pruned_sketch"]
    + c["lag_cells_pruned_energy"]
)
assert pruned + c["lag_cells_evaluated"] == c["lag_cells_total"], c
rate = pruned / c["lag_cells_total"]
assert rate >= 0.30, f"prune rate {rate:.3f} below 0.30 at phi = 0.85"
print(f"lag obs ok: {pruned} of {c['lag_cells_total']} cells pruned ({rate:.3f})")
PY
python3 scripts/perf_gate.py --only lag_search

echo "== kernels bench (smoke) =="
cargo bench -p wtts-bench --bench kernels -- --smoke
python3 scripts/perf_gate.py --only kernels

echo "== perf budget (all recorded baselines) =="
python3 scripts/perf_gate.py

echo "== examples (smoke) =="
cargo run --release --example quickstart >/dev/null
cargo run --release --example fleet_ingest -- --metrics-json "$metrics_json" >/dev/null
python3 - "$metrics_json" <<'PY'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")

with open(sys.argv[1]) as fh:
    m = json.load(fh, parse_constant=reject_nonfinite)

accounted = (
    m["ingested"]
    + m["dropped_late"]
    + m["dropped_duplicate"]
    + m["dropped_future_jump"]
    + m["dropped_queue_closed"]
)
assert accounted == m["offered"], (accounted, m["offered"])
assert m["fully_accounted"] is True
for shard in m["per_shard"]:
    entered = shard["batches_entered"]
    exited = shard["batches_exited"]
    in_flight = shard["batches_in_flight"]
    assert entered == exited + in_flight, shard
    assert in_flight == 0, shard
print("metrics JSON ok: conservation holds across", len(m["per_shard"]), "shards")
PY

echo "== crash-recovery smoke =="
wal_dir="$(mktemp -d /tmp/wtts_ci_wal.XXXXXX)"
clean_wal_dir="$(mktemp -d /tmp/wtts_ci_wal_clean.XXXXXX)"
recovered_json="$(mktemp /tmp/wtts_ci_recovered.XXXXXX.json)"
clean_json="$(mktemp /tmp/wtts_ci_clean.XXXXXX.json)"
recovered_out="$(mktemp /tmp/wtts_ci_recovered_out.XXXXXX.txt)"
clean_out="$(mktemp /tmp/wtts_ci_clean_out.XXXXXX.txt)"
trap 'rm -f "$metrics_json" "$sweep_metrics_json" "$prune_metrics_json" \
    "$lag_metrics_json" "$recovered_json" "$clean_json" "$recovered_out" \
    "$clean_out"; rm -rf "$wal_dir" "$clean_wal_dir"' EXIT

# Kill the ingest dead (process abort, no unwinding) mid-stream...
set +e
cargo run --release --example fleet_ingest -- \
    --wal-dir "$wal_dir" --snapshot-every 8000 --fsync --kill-after 30000 \
    >/dev/null 2>&1
kill_status=$?
set -e
if [ "$kill_status" -eq 0 ]; then
    echo "--kill-after should have aborted the process" >&2
    exit 1
fi

# ...check the stale single-writer lock fences a plain reopen, then
# recover with --takeover and finish, and run once uninterrupted.
set +e
cargo run --release --example fleet_ingest -- \
    --wal-dir "$wal_dir" --snapshot-every 8000 --recover \
    >/dev/null 2>&1
stale_status=$?
set -e
if [ "$stale_status" -eq 0 ]; then
    echo "recovery without --takeover should refuse the stale lock" >&2
    exit 1
fi
cargo run --release --example fleet_ingest -- \
    --wal-dir "$wal_dir" --snapshot-every 8000 --recover --takeover \
    --metrics-json "$recovered_json" >"$recovered_out"
cargo run --release --example fleet_ingest -- \
    --wal-dir "$clean_wal_dir" --metrics-json "$clean_json" >"$clean_out"

recovered_digest="$(grep '^state digest:' "$recovered_out")"
clean_digest="$(grep '^state digest:' "$clean_out")"
if [ "$recovered_digest" != "$clean_digest" ]; then
    echo "state digests diverged: '$recovered_digest' vs '$clean_digest'" >&2
    exit 1
fi

python3 - "$recovered_json" "$clean_json" <<'PY'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")

def load(path):
    with open(path) as fh:
        return json.load(fh, parse_constant=reject_nonfinite)

recovered, clean = load(sys.argv[1]), load(sys.argv[2])

# Every replay-invariant book must match the uninterrupted run exactly;
# only the durability bookkeeping (replays, recoveries, snapshots, stage
# timings) may differ.
invariant = [
    "offered", "ingested", "baselines", "reset_spanning_gaps",
    "counter_resets", "dropped_late", "dropped_duplicate",
    "dropped_future_jump", "dropped_queue_closed", "windows_sealed",
    "windows_matched", "windows_novel", "windows_insufficient",
    "partial_windows", "wal_records", "fully_accounted",
]
for key in invariant:
    assert recovered[key] == clean[key], (key, recovered[key], clean[key])
assert recovered["wal_records"] == recovered["offered"], "WAL must cover the stream"
assert recovered["recoveries"] == 1, recovered["recoveries"]
assert recovered["wal_replayed"] > 0, "recovery replayed nothing"
assert clean["recoveries"] == 0 and clean["wal_replayed"] == 0
print("crash recovery ok:", recovered["wal_replayed"], "reports replayed,",
      recovered["offered"], "offered, books identical to the uninterrupted run")
PY

echo "== fault-injection smoke =="
fault_wal_dir="$(mktemp -d /tmp/wtts_ci_wal_fault.XXXXXX)"
fault_json="$(mktemp /tmp/wtts_ci_fault.XXXXXX.json)"
fault_out="$(mktemp /tmp/wtts_ci_fault_out.XXXXXX.txt)"
trap 'rm -f "$metrics_json" "$sweep_metrics_json" "$prune_metrics_json" \
    "$lag_metrics_json" "$recovered_json" "$clean_json" "$recovered_out" \
    "$clean_out" "$fault_json" "$fault_out"; \
    rm -rf "$wal_dir" "$clean_wal_dir" "$fault_wal_dir"' EXIT

# Kill the ingest mid-stream while a seeded I/O fault schedule (EIO, short
# writes, ENOSPC, lying fsync, torn renames) hammers the WAL layer...
set +e
cargo run --release --example fleet_ingest -- \
    --wal-dir "$fault_wal_dir" --snapshot-every 8000 \
    --fault-seed 42 --fault-ops 12 --kill-after 60000 \
    >/dev/null 2>&1
fault_kill_status=$?
set -e
if [ "$fault_kill_status" -eq 0 ]; then
    echo "--kill-after should have aborted the faulted process" >&2
    exit 1
fi

# ...then recover under the same fault schedule. The outcome must be either
# a bit-identical finish or a typed, counted durability gap — never a
# silent divergence.
cargo run --release --example fleet_ingest -- \
    --wal-dir "$fault_wal_dir" --snapshot-every 8000 \
    --fault-seed 42 --fault-ops 12 --recover --takeover \
    --metrics-json "$fault_json" >"$fault_out"

if grep -q '^durability: durable' "$fault_out"; then
    fault_digest="$(grep '^state digest:' "$fault_out")"
    if [ "$fault_digest" != "$clean_digest" ]; then
        echo "durable faulted run diverged: '$fault_digest' vs '$clean_digest'" >&2
        exit 1
    fi
elif ! grep -q '^durability: DEGRADED' "$fault_out"; then
    echo "faulted run reported neither durable nor a typed gap" >&2
    exit 1
fi

python3 - "$fault_json" <<'PY'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")

with open(sys.argv[1]) as fh:
    m = json.load(fh, parse_constant=reject_nonfinite)

# Zero-false-loss: every offered report is in the WAL or in a typed gap.
gap = m["wal_gap_records"] + m["wal_lost_records"]
assert m["durability_gap"] == gap, (m["durability_gap"], gap)
assert m["wal_records"] + gap == m["offered"], \
    (m["wal_records"], gap, m["offered"])
assert m["durably_accounted"] is True
assert m["fully_accounted"] is True
assert m["wal_io_retries"] >= 1, "the seeded schedule must exercise retries"
assert m["wal_io_gave_up"] == 0 or gap > 0, \
    "a give-up must surface as a counted gap"
assert m["lock_takeovers"] == 1, m["lock_takeovers"]
print("fault injection ok:", m["wal_io_retries"], "I/O retries,",
      gap, "reports in the durability gap,", m["offered"], "offered")
PY

echo "CI checks passed."
