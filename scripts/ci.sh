#!/usr/bin/env bash
# CI gate: formatting, lints (warnings denied), build and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== ingest bench (smoke) =="
cargo bench -p wtts-bench --bench ingest -- --smoke

echo "CI checks passed."
