#!/usr/bin/env bash
# CI gate: formatting, lints (warnings denied), build and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== ingest bench (smoke) =="
cargo bench -p wtts-bench --bench ingest -- --smoke

echo "== examples (smoke) =="
cargo run --release --example quickstart >/dev/null
metrics_json="$(mktemp /tmp/wtts_ci_metrics.XXXXXX.json)"
trap 'rm -f "$metrics_json"' EXIT
cargo run --release --example fleet_ingest -- --metrics-json "$metrics_json" >/dev/null
python3 - "$metrics_json" <<'PY'
import json, sys

with open(sys.argv[1]) as fh:
    m = json.load(fh)

accounted = (
    m["ingested"]
    + m["dropped_late"]
    + m["dropped_duplicate"]
    + m["dropped_future_jump"]
)
assert accounted == m["offered"], (accounted, m["offered"])
assert m["fully_accounted"] is True
for shard in m["per_shard"]:
    entered = shard["batches_entered"]
    exited = shard["batches_exited"]
    in_flight = shard["batches_in_flight"]
    assert entered == exited + in_flight, shard
    assert in_flight == 0, shard
print("metrics JSON ok: conservation holds across", len(m["per_shard"]), "shards")
PY

echo "CI checks passed."
