#!/usr/bin/env python3
"""Unified performance-budget gate over committed bench baselines.

Every optimized subsystem records its measured baseline in a committed
``results/BENCH_*.json``; this script checks those records against the
floors in ``results/PERF_BUDGET.json`` so CI fails loudly when a change
ships a slower baseline (or drops the bit-identity bit) instead of three
copies of the same inline assert drifting apart in ``ci.sh``.

Usage:
    perf_gate.py [--budget results/PERF_BUDGET.json] [--only ENTRY]

With ``--only``, gates a single budget entry (used right after the
matching bench smoke in ci.sh); without it, gates every entry.

Budget entry schema (all fields except ``file`` optional):

    "file":    bench JSON path, relative to the repo root
    "bench":   expected value of the record's "bench" field
    "require": {dotted.path: exact-value} equality checks
    "floors":  {dotted.path: minimum} numeric >= checks
    "each":    {"path": dotted.path-to-array, "floors": {key: minimum}}
               per-element floors over an array of records
    "at_least": {"glob": "kernels.*.speedup_min", "min": M, "count": K}
               at least K of the glob-matched values must be >= M

Updating a floor is a reviewed change: re-run the bench, inspect the
regenerated BENCH file, and commit the new floor together with it (see
DESIGN.md section 15).
"""

import argparse
import json
import os
import sys


def reject_nonfinite(tok):
    raise ValueError(f"non-finite constant {tok} leaked into JSON")


def load_json(path):
    with open(path) as fh:
        return json.load(fh, parse_constant=reject_nonfinite)


def resolve(record, dotted):
    """Walks a dotted path through dicts and lists; '*' fans out.

    Returns a list of (path, value) leaves so globbed paths report which
    concrete key violated the budget.
    """
    leaves = [("", record)]
    for part in dotted.split("."):
        widened = []
        for prefix, node in leaves:
            label = f"{prefix}.{part}" if prefix else part
            if part == "*":
                if isinstance(node, dict):
                    items = sorted(node.items())
                elif isinstance(node, list):
                    items = list(enumerate(node))
                else:
                    raise KeyError(f"{prefix or '<root>'} is not globbable")
                for key, value in items:
                    widened.append((f"{prefix}.{key}" if prefix else str(key), value))
            elif isinstance(node, dict):
                if part not in node:
                    raise KeyError(f"missing key {label}")
                widened.append((label, node[part]))
            elif isinstance(node, list):
                widened.append((label, node[int(part)]))
            else:
                raise KeyError(f"{prefix} is a leaf; cannot descend into {part}")
        leaves = widened
    return leaves


def resolve_one(record, dotted):
    leaves = resolve(record, dotted)
    if len(leaves) != 1:
        raise KeyError(f"path {dotted} is not a single leaf")
    return leaves[0][1]


def check_entry(name, spec, failures):
    path = spec["file"]
    if not os.path.exists(path):
        failures.append(f"{name}: bench record {path} is missing")
        return
    record = load_json(path)

    if "bench" in spec and record.get("bench") != spec["bench"]:
        failures.append(
            f"{name}: {path} records bench {record.get('bench')!r}, "
            f"expected {spec['bench']!r}"
        )
        return

    for dotted, expected in spec.get("require", {}).items():
        actual = resolve_one(record, dotted)
        if actual != expected:
            failures.append(f"{name}: {dotted} is {actual!r}, required {expected!r}")

    for dotted, floor in spec.get("floors", {}).items():
        actual = resolve_one(record, dotted)
        if not isinstance(actual, (int, float)) or actual < floor:
            failures.append(f"{name}: {dotted} = {actual!r} below floor {floor}")

    each = spec.get("each")
    if each:
        rows = resolve_one(record, each["path"])
        if not rows:
            failures.append(f"{name}: {each['path']} is empty")
        for idx, row in enumerate(rows):
            for key, floor in each["floors"].items():
                actual = row.get(key)
                if not isinstance(actual, (int, float)) or actual < floor:
                    failures.append(
                        f"{name}: {each['path']}[{idx}].{key} = {actual!r} "
                        f"below floor {floor}"
                    )

    at_least = spec.get("at_least")
    if at_least:
        leaves = resolve(record, at_least["glob"])
        passing = [(p, v) for p, v in leaves if isinstance(v, (int, float)) and v >= at_least["min"]]
        if len(passing) < at_least["count"]:
            detail = ", ".join(f"{p}={v}" for p, v in leaves)
            failures.append(
                f"{name}: only {len(passing)} of {len(leaves)} values at "
                f"{at_least['glob']} reach {at_least['min']} "
                f"(need {at_least['count']}): {detail}"
            )

    if not failures:
        summary = [f"{d}={resolve_one(record, d)}" for d in spec.get("floors", {})]
        print(f"perf gate ok: {name} ({'; '.join(summary) or 'requirements hold'})")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--budget", default="results/PERF_BUDGET.json")
    ap.add_argument("--only", default=None, help="gate a single budget entry")
    args = ap.parse_args()

    budget = load_json(args.budget)
    entries = budget["entries"]
    if args.only is not None:
        if args.only not in entries:
            sys.exit(f"perf gate: no budget entry named {args.only!r}")
        entries = {args.only: entries[args.only]}

    failures = []
    for name, spec in entries.items():
        entry_failures = []
        try:
            check_entry(name, spec, entry_failures)
        except (KeyError, ValueError, IndexError) as exc:
            entry_failures.append(f"{name}: {exc}")
        failures.extend(entry_failures)

    if failures:
        for line in failures:
            print(f"perf gate FAIL: {line}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
